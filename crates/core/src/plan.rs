//! The memory planner: compile `(Net, DeviceSpec, Policy)` into a static
//! [`MemoryPlan`] — fast enough to sit on every hot path.
//!
//! SuperNeurons is architecturally a *planning* system — liveness windows,
//! cost-aware recomputation segments, offload/prefetch points and workspace
//! choices are all derivable from the `(net, policy, device)` triple before
//! the first kernel runs. This module performs that derivation once, ahead
//! of time: it walks the route with the same decision logic the executor
//! used to interleave with execution (the Alg. 2 Tensor Cache, the
//! reclamation ladder, eager offload, prefetch-ahead, §3.4 segment replay,
//! §3.5 dynamic workspaces), driving a *real* allocator and the tiered host
//! pools — but no timeline — and records every residency mutation as an
//! explicit [`PlanOp`].
//!
//! Since PR 3, compilation **is** the workhorse of the whole system:
//! cluster admission ladders, `session::feasible` binary searches and the
//! framework comparisons are compile-only. The planner is therefore built
//! for throughput, on three levels:
//!
//! * **Hot structures** — allocations go through the indexed
//!   `sn_mempool::HeapPool` (O(log n) first-fit, O(1) largest-fragment) and
//!   cache decisions through the O(1) intrusive LRU in [`crate::utp`]; the
//!   walk itself allocates nothing per step (scratch buffers are reused,
//!   tensor lists are borrowed from the liveness plan, error-path layer
//!   names are only materialized on error).
//! * **Analysis sharing** — `Route`, `NetCost`, `LivenessPlan` and
//!   `RecomputePlan` depend only on `(net, liveness options, recompute
//!   mode)`, not on the device; they are cached by [`Net::fingerprint`] and
//!   shared via `Arc` across the policy ladder and across devices.
//! * **Plan memo** — [`compile_memo`] caches whole compilations under a
//!   `(net fingerprint, policy, device)` key and returns a shared
//!   `Arc<CompiledPlan>`; admission ladders and feasibility searches that
//!   re-ask the same question get the answer back in hash-lookup time
//!   (OOM outcomes are memoized too). [`plan_memo_stats`] exposes
//!   hit/miss counters; [`clear_plan_memo`] resets (bench support).
//!
//! None of this changes a single planned byte: the `plan` bench experiment
//! still asserts plan peaks equal executed peaks across the preset × model
//! matrix, and the `compile` experiment asserts the optimized planner's
//! plans are byte-identical to the retained reference implementation
//! ([`compile_reference`]: linear-scan pool + `Vec` cache list).
//!
//! The result of a compile is a cheap, inspectable, reusable artifact:
//!
//! * [`MemoryPlan::peak_bytes`] is the **exact** peak the execution will hit
//!   — the executor replays the identical alloc/free sequence through an
//!   identical allocator, so the high-water mark is equal *by construction*.
//!   Cluster admission reserves this number without ever running a
//!   simulated iteration.
//! * [`MemoryPlan::steps`] is a complete instruction stream — the executor
//!   is an interpreter over it, and [`MemoryPlan::render`] prints the
//!   on-disk debug format (one line per op) for inspection.
//! * [`MemoryPlan::lifetimes`] summarizes per-tensor residency: creation,
//!   death, whether the plan offloads or recomputes it.
//!
//! Training plans cover one `2N`-step iteration; **inference plans**
//! (compiled from [`Route::construct_inference`]) are forward-only: no
//! gradients exist, every output is freed at its last forward reader, and
//! nothing is eagerly offloaded (there is no backward to fetch it back for).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fxhash::FxHashMap;
use sn_graph::liveness::{LivenessOptions, LivenessPlan, TensorId, TensorRole};
use sn_graph::{LayerId, Net, NetCost, Route, StepPhase};
use sn_sim::{AllocGrant, DeviceAllocator, DeviceSpec, SimTime};

use crate::convalgo::{self, AlgoChoice};
use crate::device::Device;
use crate::executor::{Counters, ExecError};
use crate::policy::{Policy, RecomputeMode, WorkspacePolicy};
use crate::recompute::{RecomputePlan, SegmentStrategy};
use crate::tiers::Tier;
use crate::utp::{Residence, Utp};

/// One residency instruction. A step's ops execute strictly in order: `pre`
/// ops before the kernel, `post` ops after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Materialize tensor `t` on device (fresh allocation).
    Alloc(TensorId),
    /// Allocate device memory for `t` and copy it in from its host slot
    /// (H2D; consumers gate on the transfer).
    Fetch(TensorId),
    /// Start a device→host copy-out of `t`: `evict: true` is an Alg. 2
    /// cache eviction (release as soon as the copy lands), `false` an eager
    /// checkpoint offload (release once all forward consumers ran).
    Offload { t: TensorId, evict: bool },
    /// Release the device copy of `t` (awaiting its in-flight copy-out
    /// first); the host copy, if any, becomes the residence.
    ReleaseDevice(TensorId),
    /// Fully free `t`: device grant, host slot, any in-flight transfer.
    Free(TensorId),
    /// Replay `layer`'s forward as part of a §3.4 recomputation segment.
    Recompute(LayerId),
    /// Allocate the step's convolution workspace (exactly these bytes).
    AllocWorkspace(u64),
    /// Allocate the step's transient buffer (weight gradient / fwd mask).
    AllocTransient(u64),
    /// Release the step's workspace + transient buffer.
    FreeTransients,
    /// Launch gradient bucket `bucket` (`bytes` of weight gradients) on the
    /// device group's ring — a [`crate::group::GroupPlan`] schedule entry.
    /// Never present in a single-device plan's op stream: per-replica plans
    /// stay byte-identical to their single-device compilation, and the
    /// group interpreter schedules collectives *around* the replica stream
    /// (they draw on the separately-accounted comm workspace, not the heap
    /// pool). The op exists so the rendered plan format covers collectives
    /// — `GroupPlan::render` interleaves these lines at their gating steps.
    Collective { bucket: u32, bytes: u64 },
}

/// The workspace decision for one CONV step (Fig. 12's record).
#[derive(Debug, Clone, Copy)]
pub struct WorkspacePlan {
    pub bytes: u64,
    pub max_speed_bytes: u64,
    pub algo: &'static str,
    pub speedup: f64,
}

/// Half-open index range into the plan's flat op stream
/// ([`MemoryPlan::ops`]). Steps reference their ops by range instead of
/// owning per-step vectors: one plan is one allocation's worth of ops, and
/// [`StepPlan`] stays `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpRange {
    pub start: u32,
    pub end: u32,
}

impl OpRange {
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The compiled schedule of one step.
#[derive(Debug, Clone, Copy)]
pub struct StepPlan {
    pub layer: LayerId,
    pub phase: StepPhase,
    /// Kernel duration (with the chosen conv algorithm's speed factor).
    pub duration: SimTime,
    /// Residency ops before the kernel (input staging, evictions, replays,
    /// workspace/transient allocation), as a range of [`MemoryPlan::ops`].
    pub pre: OpRange,
    /// Residency ops after the kernel (transient release, eager offload,
    /// prefetch-ahead, liveness frees, recompute cleanup).
    pub post: OpRange,
    /// CONV steps only: the dynamic workspace choice.
    pub workspace: Option<WorkspacePlan>,
}

/// Per-tensor residency summary (the serializable lifetime table).
#[derive(Debug, Clone, Copy)]
pub struct TensorLifetime {
    pub tensor: TensorId,
    pub layer: LayerId,
    pub role: TensorRole,
    pub bytes: u64,
    /// Step at which the tensor is materialized.
    pub created_step: usize,
    /// Step after which the plan frees it.
    pub freed_after: usize,
    /// The plan moves this tensor to an external tier at least once.
    pub offloaded: bool,
    /// Forward replays of the owning layer the plan schedules.
    pub recomputes: u32,
}

/// The static memory plan: per-step actions, the exact predicted peak, and
/// per-tensor residency lifetimes.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    pub steps: Vec<StepPlan>,
    /// The flat op stream, in execution order (`pre(0) post(0) pre(1) …
    /// final`); steps and `final_range` index into it.
    pub ops: Vec<PlanOp>,
    /// End-of-iteration ops (trailing offloads whose device copies release
    /// once every consumer has run).
    pub final_range: OpRange,
    /// Exact peak device bytes the execution will hit (allocator
    /// high-water over the planned alloc/free sequence, weights included).
    pub peak_bytes: u64,
    /// Step at which the peak occurs.
    pub peak_step: usize,
    /// Resident weight bytes (the plan's first allocation).
    pub weight_bytes: u64,
    /// Per-iteration counter totals the execution will report.
    pub predicted: Counters,
    pub lifetimes: Vec<TensorLifetime>,
    /// Forward-only serving plan (no backward half, no gradients)?
    pub inference: bool,
    /// Analytic busy totals per engine, for the iteration-time estimate.
    pub compute_ns: u64,
    pub alloc_ns: u64,
    pub h2d_ns: u64,
    pub d2h_ns: u64,
    /// Every DMA serializes against the host under this policy.
    pub serialized: bool,
}

impl MemoryPlan {
    /// Total op count (diagnostic).
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// The ops of a range.
    pub fn ops_in(&self, r: OpRange) -> &[PlanOp] {
        &self.ops[r.start as usize..r.end as usize]
    }

    /// Pre-kernel ops of step `s`.
    pub fn pre_ops(&self, s: usize) -> &[PlanOp] {
        self.ops_in(self.steps[s].pre)
    }

    /// Post-kernel ops of step `s`.
    pub fn post_ops(&self, s: usize) -> &[PlanOp] {
        self.ops_in(self.steps[s].post)
    }

    /// End-of-iteration ops.
    pub fn final_ops(&self) -> &[PlanOp] {
        self.ops_in(self.final_range)
    }

    /// Analytic iteration-time estimate: the busiest engine bounds the
    /// makespan (compute serializes with allocator calls on the host
    /// thread; DMA engines run concurrently unless the policy serializes
    /// them). A pacing estimate for schedulers — the executor's measured
    /// [`crate::IterationReport::iter_time`] is the ground truth.
    pub fn iter_time_estimate(&self) -> SimTime {
        let host = self.compute_ns + self.alloc_ns;
        let ns = if self.serialized {
            host + self.h2d_ns + self.d2h_ns
        } else {
            host.max(self.h2d_ns).max(self.d2h_ns)
        };
        SimTime::from_ns(ns)
    }

    /// One op in the on-disk debug format (shared with `GroupPlan::render`,
    /// which interleaves `Collective` lines at their gating steps). This
    /// vocabulary is round-trip-stable: tests diff rendered plans across
    /// implementations and PRs.
    pub(crate) fn op_str(op: &PlanOp) -> String {
        match op {
            PlanOp::Alloc(t) => format!("alloc t{}", t.0),
            PlanOp::Fetch(t) => format!("fetch t{}", t.0),
            PlanOp::Offload { t, evict: true } => format!("evict-offload t{}", t.0),
            PlanOp::Offload { t, evict: false } => format!("offload t{}", t.0),
            PlanOp::ReleaseDevice(t) => format!("release t{}", t.0),
            PlanOp::Free(t) => format!("free t{}", t.0),
            PlanOp::Recompute(l) => format!("recompute L{}", l.0),
            PlanOp::AllocWorkspace(b) => format!("ws+{b}"),
            PlanOp::AllocTransient(b) => format!("tr+{b}"),
            PlanOp::FreeTransients => "tr-".into(),
            PlanOp::Collective { bucket, bytes } => format!("allreduce b{bucket}:{bytes}"),
        }
    }

    /// The on-disk debug format: a line per step with its ops, then the
    /// peak/lifetime summary. Stable enough to diff across PRs.
    pub fn render(&self, net: &Net) -> String {
        let op_str = Self::op_str;
        let mut out = format!(
            "MemoryPlan[{}] {} steps, {} ops, peak {} bytes @step {}, weights {}\n",
            if self.inference {
                "inference"
            } else {
                "training"
            },
            self.steps.len(),
            self.n_ops(),
            self.peak_bytes,
            self.peak_step,
            self.weight_bytes,
        );
        for (s, sp) in self.steps.iter().enumerate() {
            let ops: Vec<String> = self
                .ops_in(sp.pre)
                .iter()
                .map(op_str)
                .chain(std::iter::once("KERNEL".to_string()))
                .chain(self.ops_in(sp.post).iter().map(op_str))
                .collect();
            out.push_str(&format!(
                "  {s:>5} {} {:<12} {}{}\n",
                match sp.phase {
                    StepPhase::Forward => "F",
                    StepPhase::Backward => "B",
                },
                net.layer(sp.layer).name,
                sp.workspace
                    .map(|w| format!("[{} ws={}] ", w.algo, w.bytes))
                    .unwrap_or_default(),
                ops.join(" "),
            ));
        }
        if !self.final_range.is_empty() {
            let ops: Vec<String> = self.final_ops().iter().map(op_str).collect();
            out.push_str(&format!("  final {}\n", ops.join(" ")));
        }
        out
    }
}

/// Everything a compilation produces: the graph-derived inputs (route,
/// costs, liveness, recomputation segments) plus the [`MemoryPlan`] built
/// from them. Every field is `Arc`-shared — the analyses because they
/// depend only on the net and a few policy bits (one copy serves a whole
/// admission ladder), the plan so that cloning a `CompiledPlan` (e.g. one
/// interpreter per device-group replica) never copies the op stream.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    pub route: Arc<Route>,
    pub cost: Arc<NetCost>,
    pub liveness: Arc<LivenessPlan>,
    pub rplan: Arc<RecomputePlan>,
    pub plan: Arc<MemoryPlan>,
}

// ---------------------------------------------------------------------
// Analysis cache: (fingerprint, liveness options, recompute mode) →
// shared route/cost/liveness/recompute-plan bundle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Analyses {
    route: Arc<Route>,
    cost: Arc<NetCost>,
    liveness: Arc<LivenessPlan>,
    rplan: Arc<RecomputePlan>,
    /// Per-layer max-speed conv algorithm choice (Fig. 12's "MAX Speed WS"
    /// series) — a pure function of the net, recomputed per CONV step
    /// before this cache existed.
    max_algo: Arc<Vec<AlgoChoice>>,
}

type AnalysisKey = ((u64, u64), bool, LivenessOptions, RecomputeMode);

static ANALYSIS_CACHE: OnceLock<Mutex<FxHashMap<AnalysisKey, Analyses>>> = OnceLock::new();

/// Cap on cached analysis bundles; the set of distinct nets in any one
/// process is small, this only guards against unbounded growth.
const ANALYSIS_CACHE_CAP: usize = 512;

/// The planner-facing inputs derived from the graph alone. `effective_*`
/// mirror [`compile`]'s inference adjustments, so the cache key is exactly
/// what the analyses depend on.
fn analyses_for(net: &Net, policy: Policy, inference: bool) -> Analyses {
    let options = effective_liveness_options(policy, inference);
    let rmode = effective_recompute_mode(policy, inference);
    let key = (net.fingerprint(), inference, options, rmode);
    let cache = ANALYSIS_CACHE.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let a = build_analyses(net, options, rmode, inference);
    let mut map = cache.lock().unwrap();
    if map.len() >= ANALYSIS_CACHE_CAP {
        map.clear();
    }
    map.insert(key, a.clone());
    a
}

fn build_analyses(
    net: &Net,
    options: LivenessOptions,
    rmode: RecomputeMode,
    inference: bool,
) -> Analyses {
    let route = if inference {
        Route::construct_inference(net)
    } else {
        Route::construct(net)
    };
    // Costs at the options' precision: activation/gradient tensors and the
    // all-reduce payload scale by dtype, master weights stay fp32.
    let cost = NetCost::with_precision(net, options.precision);
    let liveness = LivenessPlan::analyze(net, &route, options);
    let rplan = RecomputePlan::build(net, &route, &cost, rmode);
    let max_algo = net
        .layers()
        .iter()
        .map(|l| convalgo::max_speed_algo(net, l.id))
        .collect();
    Analyses {
        route: Arc::new(route),
        cost: Arc::new(cost),
        liveness: Arc::new(liveness),
        rplan: Arc::new(rplan),
        max_algo: Arc::new(max_algo),
    }
}

fn effective_liveness_options(policy: Policy, inference: bool) -> LivenessOptions {
    if inference {
        // Forward-only: recompute-aware lifetime shortening is meaningless
        // (nothing lives past its forward readers to begin with).
        LivenessOptions {
            recompute_non_checkpoints: false,
            ..policy.liveness_options()
        }
    } else {
        policy.liveness_options()
    }
}

fn effective_recompute_mode(policy: Policy, inference: bool) -> RecomputeMode {
    if inference {
        RecomputeMode::None
    } else {
        policy.recompute
    }
}

// ---------------------------------------------------------------------
// The plan memo: (fingerprint, policy, device) → Arc<CompiledPlan>.
// ---------------------------------------------------------------------

/// Everything a compilation's outcome depends on, folded bit-exactly
/// (floats via `to_bits`), including the **device cap**: the planner adapts
/// evictions and workspaces to `dram_bytes`, so a plan compiled for one cap
/// must never be served for another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    fp: (u64, u64),
    inference: bool,
    policy: Policy,
    dev_name: String,
    dram: u64,
    gflops_bits: u64,
    mem_bw_bits: u64,
    h2d_bits: u64,
    d2h_bits: u64,
    unpinned_bits: u64,
    malloc_base_ns: u64,
    malloc_per_mib_ns: u64,
    free_base_ns: u64,
    kernel_launch_ns: u64,
}

impl PlanKey {
    pub(crate) fn new(net: &Net, spec: &DeviceSpec, policy: Policy, inference: bool) -> PlanKey {
        PlanKey {
            fp: net.fingerprint(),
            inference,
            policy,
            dev_name: spec.name.clone(),
            dram: spec.dram_bytes,
            gflops_bits: spec.peak_gflops.to_bits(),
            mem_bw_bits: spec.mem_bw_gbps.to_bits(),
            h2d_bits: spec.pcie_h2d_gbps.to_bits(),
            d2h_bits: spec.pcie_d2h_gbps.to_bits(),
            unpinned_bits: spec.unpinned_factor.to_bits(),
            malloc_base_ns: spec.malloc_base.0,
            malloc_per_mib_ns: spec.malloc_per_mib.0,
            free_base_ns: spec.free_base.0,
            kernel_launch_ns: spec.kernel_launch.0,
        }
    }
}

type MemoMap = FxHashMap<PlanKey, Result<Arc<CompiledPlan>, ExecError>>;

static PLAN_MEMO: OnceLock<Mutex<MemoMap>> = OnceLock::new();
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Entry cap: a runaway sweep over thousands of distinct nets must not pin
/// every plan it ever compiled. On overflow the whole memo resets (plans
/// are recomputable by definition).
const PLAN_MEMO_CAP: usize = 4096;

/// Plan-memo effectiveness counters (process-wide, reset by
/// [`clear_plan_memo`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// Current hit/miss/entry counts of the plan memo.
pub fn plan_memo_stats() -> MemoStats {
    let entries = PLAN_MEMO
        .get()
        .map(|m| m.lock().unwrap().len())
        .unwrap_or(0);
    MemoStats {
        hits: MEMO_HITS.load(Ordering::Relaxed),
        misses: MEMO_MISSES.load(Ordering::Relaxed),
        entries,
    }
}

/// Drop every memoized plan and zero the hit/miss counters; the shared
/// analysis bundles stay warm. Benchmark support (measuring a memo-cold,
/// analyses-warm compile — the steady-state admission regime) — never
/// needed for correctness.
pub fn clear_plan_memo() {
    if let Some(m) = PLAN_MEMO.get() {
        m.lock().unwrap().clear();
    }
    MEMO_HITS.store(0, Ordering::Relaxed);
    MEMO_MISSES.store(0, Ordering::Relaxed);
}

/// [`clear_plan_memo`] plus the shared analysis cache: the next compile of
/// any net pays the full route/cost/liveness/recompute derivation again —
/// the first-contact cold state.
pub fn clear_all_caches() {
    clear_plan_memo();
    if let Some(m) = ANALYSIS_CACHE.get() {
        m.lock().unwrap().clear();
    }
}

fn compile_memo_inner(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    inference: bool,
) -> Result<Arc<CompiledPlan>, ExecError> {
    compile_memo_traced(net, spec, policy, inference).0
}

/// `(hit, miss)` counters of the process-wide metrics registry, mirroring
/// `MEMO_HITS`/`MEMO_MISSES` so memo effectiveness shows up in metrics
/// snapshots. Handles resolved once — the memo path pays two relaxed
/// atomic increments, nothing more. The registry counters are monotone
/// (never reset by [`clear_plan_memo`]): snapshot consumers difference
/// them across a run.
fn memo_metrics() -> &'static (sn_telemetry::Counter, sn_telemetry::Counter) {
    static HANDLES: OnceLock<(sn_telemetry::Counter, sn_telemetry::Counter)> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let reg = sn_telemetry::global();
        (reg.counter("plan.memo.hit"), reg.counter("plan.memo.miss"))
    })
}

/// [`compile_memo_inner`] reporting whether the result was a memo hit.
/// Test support: the global hit/miss counters are shared by every test in
/// a process, so tests assert on this per-call flag instead.
fn compile_memo_traced(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    inference: bool,
) -> (Result<Arc<CompiledPlan>, ExecError>, bool) {
    let key = PlanKey::new(net, spec, policy, inference);
    let memo = PLAN_MEMO.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(hit) = memo.lock().unwrap().get(&key) {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        memo_metrics().0.inc();
        return (hit.clone(), true);
    }
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    memo_metrics().1.inc();
    // Compile outside the lock: concurrent sweeps may duplicate a compile
    // (both produce identical plans — last insert wins) but never block on
    // each other's compilation.
    let result = compile_inner(net, spec, policy, inference).map(Arc::new);
    let mut map = memo.lock().unwrap();
    if map.len() >= PLAN_MEMO_CAP {
        map.clear();
    }
    map.insert(key, result.clone());
    (result, false)
}

/// [`compile`] through the plan memo: repeated compilations of the same
/// `(net, policy, device)` triple — the common case in admission ladders
/// and feasibility binary searches — return a shared `Arc` instead of
/// recompiling. OOM outcomes are memoized too (a job that does not fit a
/// budget still does not fit it the next time the ladder asks).
pub fn compile_memo(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<Arc<CompiledPlan>, ExecError> {
    compile_memo_inner(net, spec, policy, false)
}

/// [`compile_inference`] through the plan memo.
pub fn compile_inference_memo(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<Arc<CompiledPlan>, ExecError> {
    compile_memo_inner(net, spec, policy, true)
}

// ---------------------------------------------------------------------
// Compilation entry points
// ---------------------------------------------------------------------

/// Compile a training plan: one `2N`-step iteration. Always compiles (the
/// graph analyses may still come from the shared cache); see
/// [`compile_memo`] for the memoized form hot paths should prefer.
pub fn compile(net: &Net, spec: &DeviceSpec, policy: Policy) -> Result<CompiledPlan, ExecError> {
    compile_inner(net, spec, policy, false)
}

/// Compile a forward-only inference plan: `N` steps, outputs freed at their
/// last forward reader, no gradients, no eager offload, no recomputation.
pub fn compile_inference(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<CompiledPlan, ExecError> {
    compile_inner(net, spec, policy, true)
}

/// Compile through the **reference implementation**: the pre-optimization
/// planner walk kept verbatim in `plan_reference` (per-step `Vec`
/// clones, per-alloc `String` clones), driving the linear-scan
/// `sn_mempool::LinearPool` and the `Vec`-backed cache list, with nothing
/// cached or shared — every compile pays the full graph analyses. Produces
/// byte-identical plans (asserted by tests and the `compile` bench); exists
/// so the baseline row of `BENCH_compile.json` measures the real pre-change
/// cost on current hardware.
pub fn compile_reference(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
) -> Result<CompiledPlan, ExecError> {
    let options = effective_liveness_options(policy, false);
    let rmode = effective_recompute_mode(policy, false);
    let a = build_analyses(net, options, rmode, false);
    let plan = crate::plan_reference::plan_reference(
        net,
        spec,
        policy,
        &a.route,
        &a.cost,
        &a.liveness,
        &a.rplan,
    )?;
    Ok(CompiledPlan {
        route: a.route,
        cost: a.cost,
        liveness: a.liveness,
        rplan: a.rplan,
        plan: Arc::new(plan),
    })
}

fn compile_inner(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    inference: bool,
) -> Result<CompiledPlan, ExecError> {
    let a = analyses_for(net, policy, inference);
    let plan = plan_with(net, spec, policy, &a, inference)?;
    Ok(CompiledPlan {
        route: a.route,
        cost: a.cost,
        liveness: a.liveness,
        rplan: a.rplan,
        plan: Arc::new(plan),
    })
}

/// Run the planner walk over prepared analyses.
fn plan_with(
    net: &Net,
    spec: &DeviceSpec,
    policy: Policy,
    a: &Analyses,
    inference: bool,
) -> Result<MemoryPlan, ExecError> {
    let n_tensors = a.liveness.tensors.len();
    let total_steps = a.route.total_steps();
    let planner = Planner {
        net,
        spec,
        route: &a.route,
        cost: &a.cost,
        liveness: &a.liveness,
        rplan: &a.rplan,
        max_algo: &a.max_algo,
        policy,
        inference,
        dev: Device::new(spec.clone(), policy.allocator, policy.tiers),
        utp: Utp::new(n_tensors),
        counters: Counters::default(),
        recomputed_free_at: vec![Vec::new(); total_steps + 1],
        // Typical plans run 3-6 ops/step; reserving up front avoids the
        // doubling-realloc copies of the single largest Vec a compile builds.
        ops: Vec::with_capacity(4 * total_steps),
        sec_start: 0,
        reap_scratch: Vec::new(),
        peak_step: 0,
        peak_seen: 0,
        cur_step: 0,
        compute_ns: 0,
        h2d_ns: 0,
        d2h_ns: 0,
        offloaded: vec![false; n_tensors],
        recomputes: vec![0; net.len()],
    };
    planner.run()
}

/// What a ladder allocation is for — only turned into a display string on
/// the error path (the planner used to clone a layer-name `String` per
/// allocation; at thousands of allocations per compile that was measurable).
#[derive(Debug, Clone, Copy)]
enum AllocFor {
    Layer(LayerId),
    Workspace,
    Transient,
}

/// The compiler: the executor's old scheduling brain, run against allocator
/// + host-pool state only, emitting ops instead of touching a timeline.
struct Planner<'a> {
    net: &'a Net,
    spec: &'a DeviceSpec,
    route: &'a Route,
    cost: &'a NetCost,
    liveness: &'a LivenessPlan,
    rplan: &'a RecomputePlan,
    /// Per-layer max-speed conv choice (shared, precomputed).
    max_algo: &'a [AlgoChoice],
    policy: Policy,
    inference: bool,
    dev: Device,
    utp: Utp,
    counters: Counters,
    /// Recomputed tensors to drop at the end of a given step, indexed by
    /// step (dense: the planner knows `total_steps` up front).
    recomputed_free_at: Vec<Vec<TensorId>>,
    /// The plan's flat op stream; the section since `sec_start` is the one
    /// currently being accumulated (pre, post, or final).
    ops: Vec<PlanOp>,
    sec_start: usize,
    /// Reused buffer for the per-step reapable-offload drain.
    reap_scratch: Vec<TensorId>,
    peak_step: usize,
    peak_seen: u64,
    cur_step: usize,
    compute_ns: u64,
    h2d_ns: u64,
    d2h_ns: u64,
    offloaded: Vec<bool>,
    recomputes: Vec<u32>,
}

impl<'a> Planner<'a> {
    fn meta(&self, t: TensorId) -> &'a sn_graph::TensorMeta {
        &self.liveness.tensors[t.0]
    }

    /// Close the op section accumulated since the last close.
    fn take_section(&mut self) -> OpRange {
        let r = OpRange {
            start: self.sec_start as u32,
            end: self.ops.len() as u32,
        };
        self.sec_start = self.ops.len();
        r
    }

    /// Effective transfer bandwidth for `t`'s external tier (the pageable
    /// penalty applies to the local-host tier only).
    fn tier_gbps(&self, t: TensorId) -> f64 {
        let tier = self.utp.tier_of(t);
        match tier {
            Tier::LocalHost if !self.policy.pinned_host => tier.gbps() * self.spec.unpinned_factor,
            _ => tier.gbps(),
        }
    }

    fn transfer_ns(&self, t: TensorId) -> u64 {
        sn_sim::time::transfer_time(self.meta(t).bytes, self.tier_gbps(t)).as_ns()
    }

    /// Allocate, tracking where the peak lands.
    fn charged_alloc(&mut self, bytes: u64) -> Result<AllocGrant, sn_sim::AllocError> {
        let g = self.dev.alloc_charged(bytes)?;
        let used = self.dev.alloc.used();
        if used > self.peak_seen {
            self.peak_seen = used;
            self.peak_step = self.cur_step;
        }
        Ok(g)
    }

    /// Emit `ReleaseDevice(t)` and apply it.
    fn release_device(&mut self, t: TensorId) {
        self.ops.push(PlanOp::ReleaseDevice(t));
        self.utp.release_device(t, &mut self.dev);
    }

    /// Drop a recomputed tensor's device copy (memory-centric cleanup),
    /// honouring the lock/offloading guards.
    fn drop_device_copy(&mut self, t: TensorId) {
        let st = self.utp.state(t);
        if st.lock > 0 || st.offloading || st.residence != Residence::Device {
            return;
        }
        self.release_device(t);
    }

    /// Release every pending offload whose consumers have all run — the
    /// step-boundary drain that pins the memory trajectory at every
    /// allocation point, independent of DMA timing.
    fn drain_reapable(&mut self, step: usize) {
        let mut scratch = std::mem::take(&mut self.reap_scratch);
        self.utp.collect_reapable(self.liveness, step, &mut scratch);
        self.counters.reaps += scratch.len() as u64;
        for &t in &scratch {
            self.release_device(t);
        }
        self.reap_scratch = scratch;
    }

    /// One rung of the reclamation ladder: release the earliest reapable
    /// in-flight offload, else evict via the Tensor Cache. `Ok(true)` means
    /// memory may have been freed and the allocation is worth retrying.
    fn reclaim_some(&mut self, step: usize) -> Result<bool, ExecError> {
        if let Some(t) = self.utp.first_reapable(self.liveness, step) {
            self.counters.reaps += 1;
            self.release_device(t);
            return Ok(true);
        }
        if self.policy.tensor_cache {
            return self.evict_one(step);
        }
        Ok(false)
    }

    /// `LRU.out` (Alg. 2): pick the cache's victim; start an eviction
    /// copy-out if its contents are still needed, release directly if a
    /// valid host copy exists (or the contents are dead).
    fn evict_one(&mut self, step: usize) -> Result<bool, ExecError> {
        let Some(victim) = self.utp.pick_victim(self.policy.cache_policy) else {
            return Ok(false);
        };
        // Inclusive: a tensor whose last use is the *current* step is still
        // needed by it (eviction can run while the step assembles inputs).
        let meta = self.meta(victim);
        let needed_later =
            meta.last_use_step >= step || meta.bwd_last_use.is_some_and(|b| b >= step);
        let bytes = meta.bytes;
        let st = self.utp.state(victim);
        debug_assert_eq!(st.residence, Residence::Device);
        if needed_later && !st.host_valid {
            if !self.utp.ensure_host_slot(victim, bytes, &mut self.dev) {
                return Err(ExecError::HostExhausted { requested: bytes });
            }
            self.d2h_ns += self.transfer_ns(victim);
            self.utp.mark_offloading(victim, true, None);
            self.utp.lru_remove(victim);
            self.ops.push(PlanOp::Offload {
                t: victim,
                evict: true,
            });
            self.offloaded[victim.0] = true;
            self.counters.offloads += 1;
        } else {
            self.release_device(victim);
        }
        self.counters.evictions += 1;
        Ok(true)
    }

    /// Allocate device memory for `bytes` with the reclamation ladder.
    fn ladder_alloc(
        &mut self,
        bytes: u64,
        step: usize,
        what: AllocFor,
    ) -> Result<AllocGrant, ExecError> {
        loop {
            match self.charged_alloc(bytes) {
                Ok(g) => {
                    self.counters.alloc_grants += 1;
                    return Ok(g);
                }
                Err(_) => {
                    self.counters.ladder_rungs += 1;
                    if self.reclaim_some(step)? {
                        continue;
                    }
                    return Err(ExecError::Oom {
                        step,
                        layer: match what {
                            AllocFor::Layer(l) => self.net.layer(l).name.clone(),
                            AllocFor::Workspace => "conv workspace".into(),
                            AllocFor::Transient => "transient buffer".into(),
                        },
                        requested: bytes,
                        capacity: self.dev.alloc.capacity(),
                    });
                }
            }
        }
    }

    /// Make `t` device-resident (the Check() of Alg. 2; may recompute).
    fn ensure_present(&mut self, t: TensorId, step: usize) -> Result<(), ExecError> {
        match self.utp.state(t).residence {
            Residence::Device => {
                self.counters.cache_hits += 1;
                self.utp.lru_touch(t);
                Ok(())
            }
            Residence::Host => {
                self.counters.cache_misses += 1;
                let meta = self.meta(t);
                let (bytes, layer) = (meta.bytes, meta.layer);
                let g = self.ladder_alloc(bytes, step, AllocFor::Layer(layer))?;
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
                Ok(())
            }
            Residence::None => {
                // Only recomputable forward outputs may be legitimately
                // absent; anything else is a scheduling bug.
                let meta = self.meta(t);
                assert_eq!(
                    meta.role,
                    TensorRole::FwdOut,
                    "tensor {:?} of {} absent at step {step}",
                    meta.role,
                    self.net.layer(meta.layer).name
                );
                let layer = meta.layer;
                self.recompute_for(layer, step)?;
                debug_assert_eq!(self.utp.state(t).residence, Residence::Device);
                Ok(())
            }
        }
    }

    /// Plan the §3.4 segment replay reconstructing `layer`'s forward output.
    fn recompute_for(&mut self, layer: LayerId, step: usize) -> Result<(), ExecError> {
        let si = self.rplan.segment_of[layer.0]
            .unwrap_or_else(|| panic!("{} is not recomputable", self.net.layer(layer).name));
        let rplan = self.rplan;
        let (strategy, anchor) = {
            let seg = &rplan.segments[si];
            (seg.strategy, seg.anchor)
        };

        // The anchor checkpoint seeds the replay: bring it back first.
        let anchor_t = self.liveness.fwd_out[anchor.0];
        self.ensure_present(anchor_t, step)?;
        self.utp.states[anchor_t.0].lock += 1;

        // Speed-centric replays walk the segment's member list in place
        // (it lives in the shared recompute plan); memory-centric replays
        // walk the dependency chain computed for this specific layer.
        let chain;
        let members: &[LayerId] = match strategy {
            SegmentStrategy::SpeedCentric => &rplan.segments[si].members,
            SegmentStrategy::MemoryCentric => {
                chain = rplan.chain_to(self.net, layer);
                &chain
            }
        };
        // Memory-centric replay frees each chain intermediate as soon as the
        // next link has consumed it, keeping the replay working set at two
        // tensors (Fig. 9b's "memcost stays at l_b").
        let target = *members.last().unwrap_or(&layer);
        let mut prev_link: Option<TensorId> = None;

        for &m in members {
            let mt = self.liveness.fwd_out[m.0];
            match self.utp.state(mt).residence {
                Residence::Device => continue, // materialized by an earlier replay
                Residence::Host => {
                    // A previously recomputed copy was evicted to the host;
                    // fetching it back is cheaper than recomputing the chain.
                    self.ensure_present(mt, step)?;
                    continue;
                }
                Residence::None => {}
            }
            // Inputs of a segment member are its (single) producer's output,
            // which is either the anchor or an earlier member — resident.
            let bytes = self.meta(mt).bytes;
            let g = self.ladder_alloc(bytes, step, AllocFor::Layer(m))?;
            self.utp.mark_device(mt, g.id, self.policy.tensor_cache);
            self.ops.push(PlanOp::Alloc(mt));
            self.ops.push(PlanOp::Recompute(m));
            let lk = &self.net.layer(m).kind;
            self.compute_ns += self.cost.layer(m).fwd_time(lk, self.spec, 1.0).as_ns();
            self.counters.recompute_forwards += 1;
            self.recomputes[m.0] += 1;

            match strategy {
                SegmentStrategy::SpeedCentric => {
                    let free_at = self.meta(mt).bwd_last_use.unwrap_or(step).max(step);
                    self.recomputed_free_at[free_at].push(mt);
                }
                SegmentStrategy::MemoryCentric => {
                    if let Some(prev) = prev_link.take() {
                        self.drop_device_copy(prev);
                    }
                    if m == target {
                        self.recomputed_free_at[step].push(mt);
                    } else {
                        prev_link = Some(mt);
                    }
                }
            }
        }

        self.utp.states[anchor_t.0].lock -= 1;
        Ok(())
    }

    /// Plan the overlapped prefetch of host-resident tensors needed by
    /// upcoming backward steps, up to and including the next offloadable
    /// checkpoint's backward. Opportunistic: never evicts on its behalf.
    fn prefetch_ahead(&mut self, step: usize) {
        let route = self.route;
        let liveness = self.liveness;
        let total = route.total_steps();
        let depth = self.policy.prefetch_depth as usize;
        let mut seen_ckpt = false;
        for s in (step + 1)..total.min(step + 1 + depth) {
            for &t in &liveness.step_inputs[s] {
                if self.utp.state(t).residence != Residence::Host {
                    continue;
                }
                let bytes = self.meta(t).bytes;
                let Ok(g) = self.charged_alloc(bytes) else {
                    return;
                };
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.h2d_ns += self.transfer_ns(t);
                self.ops.push(PlanOp::Fetch(t));
                self.counters.prefetches += 1;
            }
            let l = route.step(s).layer;
            if route.step(s).phase == StepPhase::Backward
                && self.net.layer(l).kind.is_offload_candidate()
            {
                if seen_ckpt {
                    break;
                }
                seen_ckpt = true;
            }
        }
    }

    fn plan_step(&mut self, s: usize) -> Result<StepPlan, ExecError> {
        self.cur_step = s;
        let liveness = self.liveness;
        let step = self.route.step(s);
        let layer_id = step.layer;
        let kind = &self.net.layer(layer_id).kind;
        let lcost = self.cost.layer(layer_id);

        debug_assert_eq!(self.sec_start, self.ops.len());

        // Reap offloads whose consumers have all run, so this step's
        // allocations see the same free memory a synchronous engine would.
        self.drain_reapable(s);

        // 1. Stage inputs (may fetch, may plan a recomputation replay).
        for &t in &liveness.step_inputs[s] {
            self.ensure_present(t, s)?;
            // Lock immediately: ensuring a later input may trigger eviction
            // and must not victimize an input we already staged.
            self.utp.states[t.0].lock += 1;
        }

        // 2. Materialize this step's outputs.
        for &t in &liveness.created_at[s] {
            if self.utp.state(t).residence == Residence::None {
                let meta = self.meta(t);
                let (bytes, layer) = (meta.bytes, meta.layer);
                let g = self.ladder_alloc(bytes, s, AllocFor::Layer(layer))?;
                self.utp.mark_device(t, g.id, self.policy.tensor_cache);
                self.ops.push(PlanOp::Alloc(t));
            }
            self.utp.states[t.0].lock += 1;
        }

        // 3. Transients: dynamic conv workspace (§3.5) and the backward
        //    weight-gradient buffer (or forward mask workspace).
        let mut choice = AlgoChoice::fallback();
        let mut workspace = None;
        let mut ws_grant = None;
        if matches!(kind, sn_graph::LayerKind::Conv { .. }) {
            let budget = match self.policy.workspace {
                WorkspacePolicy::None => None,
                WorkspacePolicy::Dynamic => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous()),
                ),
                WorkspacePolicy::Capped(cap) => Some(
                    self.dev
                        .alloc
                        .free_bytes()
                        .min(self.dev.alloc.largest_free_contiguous())
                        .min(cap),
                ),
            };
            if let Some(free) = budget {
                choice = convalgo::select_algo(self.net, layer_id, free);
            }
            if choice.workspace > 0 {
                ws_grant = Some(self.ladder_alloc(choice.workspace, s, AllocFor::Workspace)?);
                self.ops.push(PlanOp::AllocWorkspace(choice.workspace));
            }
            let max_choice = self.max_algo[layer_id.0];
            workspace = Some(WorkspacePlan {
                bytes: choice.workspace,
                max_speed_bytes: max_choice.workspace,
                algo: choice.algo.name(),
                speedup: choice.speedup,
            });
        }
        let transient_bytes = if step.phase == StepPhase::Backward {
            lcost.wgrad_bytes
        } else {
            lcost.fwd_workspace
        };
        let tr_grant = if transient_bytes > 0 {
            let g = self.ladder_alloc(transient_bytes, s, AllocFor::Transient)?;
            self.ops.push(PlanOp::AllocTransient(transient_bytes));
            Some(g)
        } else {
            None
        };

        // 4. The kernel itself.
        let duration = match step.phase {
            StepPhase::Forward => lcost.fwd_time(kind, self.spec, choice.speedup),
            StepPhase::Backward => lcost.bwd_time(kind, self.spec, choice.speedup),
        };
        self.compute_ns += duration.as_ns();
        let pre = self.take_section();

        // 5. Release transients.
        if ws_grant.is_some() || tr_grant.is_some() {
            self.ops.push(PlanOp::FreeTransients);
            if let Some(g) = ws_grant {
                self.dev.free_charged(g.id);
            }
            if let Some(g) = tr_grant {
                self.dev.free_charged(g.id);
            }
        }

        // 6. Unlock.
        for &t in liveness.step_inputs[s]
            .iter()
            .chain(liveness.created_at[s].iter())
        {
            let st = &mut self.utp.states[t.0];
            st.lock = st.lock.saturating_sub(1);
        }

        // 7. Eager offload of checkpoint outputs (Fig. 10b policy). Never
        //    for inference: there is no backward to fetch them back for.
        if !self.inference
            && step.phase == StepPhase::Forward
            && self.policy.offload
            && self.policy.eager_offload
        {
            let t = liveness.fwd_out[layer_id.0];
            let meta = self.meta(t);
            let (offloadable, bytes) = (meta.offloadable, meta.bytes);
            let st = self.utp.state(t);
            if offloadable && bytes > 0 && !st.host_valid && !st.offloading {
                if !self.utp.ensure_host_slot(t, bytes, &mut self.dev) {
                    return Err(ExecError::HostExhausted { requested: bytes });
                }
                self.d2h_ns += self.transfer_ns(t);
                self.utp.mark_offloading(t, false, None);
                self.ops.push(PlanOp::Offload { t, evict: false });
                self.offloaded[t.0] = true;
                self.counters.offloads += 1;
            }
        }

        // 8. Overlapped prefetch for upcoming backward consumers.
        if step.phase == StepPhase::Backward && self.policy.offload && self.policy.prefetch {
            self.prefetch_ahead(s);
        }

        // 9. Liveness frees.
        for &t in &liveness.freed_after[s] {
            let st = self.utp.state(t);
            if st.residence != Residence::None || st.host_slot.is_some() {
                self.ops.push(PlanOp::Free(t));
                self.utp.free_tensor(t, &mut self.dev);
            }
        }
        // Recomputed-tensor frees scheduled for this step.
        let list = std::mem::take(&mut self.recomputed_free_at[s]);
        for t in list {
            self.drop_device_copy(t);
        }
        let post = self.take_section();

        Ok(StepPlan {
            layer: layer_id,
            phase: step.phase,
            duration,
            pre,
            post,
            workspace,
        })
    }

    fn run(mut self) -> Result<MemoryPlan, ExecError> {
        // The permanently resident weights are the plan's first allocation.
        let weight_bytes = self.cost.total_weight_bytes();
        if weight_bytes > 0 && self.charged_alloc(weight_bytes).is_err() {
            return Err(ExecError::Oom {
                step: 0,
                layer: "WEIGHTS".into(),
                requested: weight_bytes,
                capacity: self.dev.alloc.capacity(),
            });
        }

        let total = self.route.total_steps();
        let mut steps = Vec::with_capacity(total);
        for s in 0..total {
            steps.push(self.plan_step(s)?);
        }
        // End of iteration: every remaining in-flight offload has seen all
        // its consumers — release the device copies.
        self.cur_step = total;
        self.drain_reapable(total);
        let final_range = self.take_section();

        let lifetimes = self
            .liveness
            .tensors
            .iter()
            .map(|m| TensorLifetime {
                tensor: m.id,
                layer: m.layer,
                role: m.role,
                bytes: m.bytes,
                created_step: m.created_step,
                freed_after: m.last_use_step,
                offloaded: self.offloaded[m.id.0],
                recomputes: match m.role {
                    TensorRole::FwdOut => self.recomputes[m.layer.0],
                    TensorRole::Grad => 0,
                },
            })
            .collect();

        let peak_bytes = self.dev.alloc.high_water();
        debug_assert_eq!(peak_bytes, self.peak_seen);
        Ok(MemoryPlan {
            steps,
            ops: self.ops,
            final_range,
            peak_bytes,
            peak_step: self.peak_step,
            weight_bytes,
            predicted: self.counters,
            lifetimes,
            inference: self.inference,
            compute_ns: self.compute_ns,
            alloc_ns: self.dev.alloc_time.as_ns(),
            h2d_ns: self.h2d_ns,
            d2h_ns: self.d2h_ns,
            serialized: self.policy.sync_transfers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_graph::Shape4;

    /// Serializes the tests that clear the process-global plan memo, so
    /// they cannot evict each other's entries when the harness runs tests
    /// on multiple threads.
    fn memo_test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    fn small_net(batch: usize) -> Net {
        let mut net = Net::new("plan-test", Shape4::new(batch, 3, 32, 32));
        let d = net.data();
        let c1 = net.conv(d, 16, 3, 1, 1);
        let a1 = net.relu(c1);
        let p1 = net.max_pool(a1, 2, 2, 0);
        let c2 = net.conv(p1, 32, 3, 1, 1);
        let a2 = net.relu(c2);
        let f = net.fc(a2, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn plan_compiles_for_every_preset() {
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        for policy in [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
            Policy::superneurons(),
        ] {
            let c = compile(&net, &spec, policy).unwrap();
            assert_eq!(c.plan.steps.len(), c.route.total_steps());
            assert!(c.plan.peak_bytes > 0);
            assert!(!c.plan.inference);
            // The debug rendering covers every step.
            let text = c.plan.render(&net);
            assert!(text.lines().count() >= c.plan.steps.len());
        }
    }

    #[test]
    fn plan_peaks_shrink_along_the_preset_ladder() {
        let net = small_net(16);
        let spec = DeviceSpec::k40c();
        let peaks: Vec<u64> = [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
        ]
        .iter()
        .map(|p| compile(&net, &spec, *p).unwrap().plan.peak_bytes)
        .collect();
        assert!(
            peaks.windows(2).all(|w| w[1] <= w[0]),
            "plan peaks must be non-increasing: {peaks:?}"
        );
    }

    #[test]
    fn inference_plans_are_forward_only_and_smaller() {
        let net = small_net(16);
        let spec = DeviceSpec::k40c();
        let train = compile(&net, &spec, Policy::liveness_only()).unwrap();
        let inf = compile_inference(&net, &spec, Policy::liveness_only()).unwrap();
        assert!(inf.plan.inference);
        assert_eq!(inf.plan.steps.len(), net.len());
        assert!(inf.plan.steps.iter().all(|s| s.phase == StepPhase::Forward));
        assert!(
            inf.plan.peak_bytes < train.plan.peak_bytes,
            "inference {} must undercut training {}",
            inf.plan.peak_bytes,
            train.plan.peak_bytes
        );
        // No gradients, no recomputation, no offload traffic planned.
        assert_eq!(inf.plan.predicted.recompute_forwards, 0);
        assert_eq!(inf.plan.predicted.offloads, 0);
        assert!(inf
            .plan
            .lifetimes
            .iter()
            .all(|l| l.role == TensorRole::FwdOut));
    }

    #[test]
    fn plan_ops_balance_allocs_and_frees() {
        // Every tensor the plan allocates is freed (or released) by the end
        // of the iteration — replaying the plan leaks nothing but weights.
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        let c = compile(&net, &spec, Policy::superneurons()).unwrap();
        let mut live: std::collections::HashSet<TensorId> = std::collections::HashSet::new();
        // The flat stream is already in execution order (pre, post, final).
        for op in &c.plan.ops {
            match op {
                PlanOp::Alloc(t) | PlanOp::Fetch(t) => {
                    assert!(live.insert(*t), "double materialization of {t:?}");
                }
                PlanOp::ReleaseDevice(t) | PlanOp::Free(t) => {
                    live.remove(t);
                }
                _ => {}
            }
        }
        assert!(live.is_empty(), "leaked device tensors: {live:?}");
    }

    #[test]
    fn iter_time_estimate_is_positive_and_serialization_aware() {
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        let plain = compile(&net, &spec, Policy::liveness_offload())
            .unwrap()
            .plan;
        let sync = compile(&net, &spec, Policy::liveness_offload().synchronous())
            .unwrap()
            .plan;
        assert!(plain.iter_time_estimate() > SimTime::ZERO);
        assert!(sync.serialized && !plain.serialized);
        assert!(sync.iter_time_estimate() >= plain.iter_time_estimate());
    }

    #[test]
    fn reference_compile_is_byte_identical() {
        // The whole point of the optimization pass: indexed structures buy
        // time, never bytes. Peaks, op streams and counters must agree with
        // the reference (linear pool + Vec cache list) compile on every
        // preset — compared via the rendered debug format, which covers
        // every op of every step.
        let net = small_net(16);
        let spec = DeviceSpec::k40c();
        for policy in [
            Policy::baseline(),
            Policy::liveness_only(),
            Policy::liveness_offload(),
            Policy::full_memory(),
            Policy::superneurons(),
        ] {
            let fast = compile(&net, &spec, policy).unwrap();
            let slow = compile_reference(&net, &spec, policy).unwrap();
            assert_eq!(fast.plan.peak_bytes, slow.plan.peak_bytes);
            assert_eq!(fast.plan.peak_step, slow.plan.peak_step);
            assert_eq!(fast.plan.render(&net), slow.plan.render(&net));
            assert_eq!(fast.plan.predicted.evictions, slow.plan.predicted.evictions);
            assert_eq!(fast.plan.alloc_ns, slow.plan.alloc_ns);
        }
    }

    #[test]
    fn memo_returns_shared_plans_and_counts_hits() {
        // Serialized against the other memo tests: they call
        // clear_plan_memo(), which would evict entries between this test's
        // paired lookups. (Other tests in the binary only *add* entries for
        // their own keys, which cannot perturb the per-call hit flags
        // asserted here.)
        let _guard = memo_test_lock().lock().unwrap();
        let net = small_net(10);
        let spec = DeviceSpec::k40c();
        let policy = Policy::superneurons();
        clear_plan_memo();
        let (a, a_hit) = compile_memo_traced(&net, &spec, policy, false);
        let (b, b_hit) = compile_memo_traced(&net, &spec, policy, false);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(!a_hit, "first compile must be a miss");
        assert!(b_hit, "repeat compile must be a hit");
        assert!(Arc::ptr_eq(&a, &b), "memo must return the shared Arc");
        // A different device cap is a different plan — no aliasing.
        let capped = spec.clone().with_dram(spec.dram_bytes / 2);
        let (c, c_hit) = compile_memo_traced(&net, &capped, policy, false);
        assert!(!c_hit, "distinct caps must not share an entry");
        assert!(!Arc::ptr_eq(&a, &c.unwrap()));
        // Inference and training never alias.
        let (i, i_hit) = compile_memo_traced(&net, &spec, policy, true);
        assert!(!i_hit);
        let i = i.unwrap();
        assert!(i.plan.inference && !a.plan.inference);
    }

    #[test]
    fn memo_caches_oom_outcomes() {
        let _guard = memo_test_lock().lock().unwrap();
        let net = small_net(32);
        let tiny = DeviceSpec::k40c().with_dram(64 << 10);
        clear_plan_memo();
        let (r1, h1) = compile_memo_traced(&net, &tiny, Policy::baseline(), false);
        assert!(r1.is_err() && !h1);
        let (r2, h2) = compile_memo_traced(&net, &tiny, Policy::baseline(), false);
        assert!(r2.is_err());
        assert!(h2, "second failure must be served from the memo");
    }

    #[test]
    fn distinct_nets_never_alias_in_the_memo() {
        // Same shape of call, different structure: the fingerprint must
        // separate them even when name and batch agree.
        let _guard = memo_test_lock().lock().unwrap();
        let spec = DeviceSpec::k40c();
        clear_plan_memo();
        let a = compile_memo(&small_net(8), &spec, Policy::baseline()).unwrap();
        let other = {
            // Same name, same batch, one extra ACT before the FC.
            let mut net = Net::new("plan-test", Shape4::new(8, 3, 32, 32));
            let d = net.data();
            let c1 = net.conv(d, 16, 3, 1, 1);
            let a1 = net.relu(c1);
            let p1 = net.max_pool(a1, 2, 2, 0);
            let c2 = net.conv(p1, 32, 3, 1, 1);
            let a2 = net.relu(c2);
            let a3 = net.relu(a2);
            let f = net.fc(a3, 10);
            net.softmax(f);
            net
        };
        let (b, b_hit) = compile_memo_traced(&other, &spec, Policy::baseline(), false);
        assert!(!b_hit, "structurally distinct nets must not alias");
        assert_ne!(a.plan.steps.len(), b.unwrap().plan.steps.len());
    }

    #[test]
    fn distinct_precisions_never_alias_in_the_memo() {
        // An fp32 and a bf16-mixed compile of the *same* net on the *same*
        // device must live under distinct memo keys: precision is part of
        // `Policy`, hence of `PlanKey`, and the plans size tensors
        // differently.
        use sn_graph::Precision;
        let _guard = memo_test_lock().lock().unwrap();
        let net = small_net(8);
        let spec = DeviceSpec::k40c();
        clear_plan_memo();
        let fp32 = Policy::superneurons();
        let bf16 = fp32.with_precision(Precision::bf16_mixed());
        let (a, a_hit) = compile_memo_traced(&net, &spec, fp32, false);
        let (b, b_hit) = compile_memo_traced(&net, &spec, bf16, false);
        assert!(!a_hit && !b_hit, "distinct precisions must both miss");
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(
            b.plan.peak_bytes < a.plan.peak_bytes,
            "2-byte activations must shrink the plan peak ({} vs {})",
            b.plan.peak_bytes,
            a.plan.peak_bytes
        );
        // Each precision still hits its own entry on repeat.
        let (a2, a2_hit) = compile_memo_traced(&net, &spec, fp32, false);
        let (b2, b2_hit) = compile_memo_traced(&net, &spec, bf16, false);
        assert!(a2_hit && b2_hit);
        assert!(Arc::ptr_eq(&a, &a2.unwrap()));
        assert!(Arc::ptr_eq(&b, &b2.unwrap()));
    }
}
