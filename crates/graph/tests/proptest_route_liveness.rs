//! Property tests over randomly generated nonlinear networks: route
//! construction must always yield a valid topological order, and liveness
//! analysis must never free a tensor before its last reader, for *any*
//! fan/join structure.

use proptest::prelude::*;
use sn_graph::liveness::{LivenessOptions, LivenessPlan};
use sn_graph::{LayerId, Net, Route, Shape4};

/// Build a random nonlinear network from a seed recipe: a sequence of
/// operations, each consuming one or two existing frontier layers.
#[derive(Debug, Clone)]
enum Op {
    Conv,
    Act,
    Pool,
    Bn,
    /// Residual join with a randomly chosen earlier same-shape layer.
    Eltwise(usize),
    /// Fan-in concat of two frontier layers.
    Concat(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Conv),
        3 => Just(Op::Act),
        1 => Just(Op::Pool),
        2 => Just(Op::Bn),
        2 => (0usize..8).prop_map(Op::Eltwise),
        2 => (0usize..8).prop_map(Op::Concat),
    ]
}

/// Materialize a recipe into a valid Net. Shapes are kept compatible by
/// using channel-preserving convs and only joining same-shape layers.
fn build_net(ops: &[Op]) -> Net {
    let mut net = Net::new("random", Shape4::new(2, 4, 16, 16));
    let mut frontier: Vec<LayerId> = vec![net.data()];
    for op in ops {
        let cur = *frontier.last().unwrap();
        let id = match op {
            Op::Conv => net.conv(cur, net.layer(cur).out_shape.c, 3, 1, 1),
            Op::Act => net.relu(cur),
            Op::Bn => net.bn(cur),
            Op::Pool => {
                let s = net.layer(cur).out_shape;
                if s.h >= 4 {
                    net.max_pool(cur, 2, 2, 0)
                } else {
                    net.relu(cur)
                }
            }
            Op::Eltwise(pick) => {
                let shape = net.layer(cur).out_shape;
                let candidates: Vec<LayerId> = frontier
                    .iter()
                    .copied()
                    .filter(|l| *l != cur && net.layer(*l).out_shape == shape)
                    .collect();
                if candidates.is_empty() {
                    net.relu(cur)
                } else {
                    let other = candidates[pick % candidates.len()];
                    net.eltwise(&[cur, other])
                }
            }
            Op::Concat(pick) => {
                let s = net.layer(cur).out_shape;
                let candidates: Vec<LayerId> = frontier
                    .iter()
                    .copied()
                    .filter(|l| {
                        let o = net.layer(*l).out_shape;
                        *l != cur && (o.n, o.h, o.w) == (s.n, s.h, s.w)
                    })
                    .collect();
                if candidates.is_empty() {
                    net.relu(cur)
                } else {
                    let other = candidates[pick % candidates.len()];
                    net.concat(&[cur, other])
                }
            }
        };
        frontier.push(id);
        if frontier.len() > 8 {
            frontier.remove(0);
        }
        // Drop frontier entries that have been consumed as non-terminals to
        // bound join fan-in; keep the latest few.
    }
    // Terminate: every dangling layer except the last is joined via concat
    // into the head so the net validates.
    let head = *frontier.last().unwrap();
    let dangling: Vec<LayerId> = net
        .layers()
        .iter()
        .filter(|l| l.nexts.is_empty() && l.id != head)
        .map(|l| l.id)
        .collect();
    let mut cur = head;
    for d in dangling {
        // Pool/flatten mismatched shapes via FC of each then eltwise is
        // overkill; just route them through an FC to a common width and add.
        let a = net.fc(cur, 16);
        let b = net.fc(d, 16);
        cur = net.eltwise(&[a, b]);
    }
    let f = net.fc(cur, 10);
    net.softmax(f);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn route_is_always_a_valid_topological_order(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let net = build_net(&ops);
        net.validate().map_err(TestCaseError::fail)?;
        let route = Route::construct(&net);
        route.validate(&net).map_err(TestCaseError::fail)?;
        // Every layer exactly once.
        prop_assert_eq!(route.len(), net.len());
        let mut seen = vec![false; net.len()];
        for id in &route.fwd {
            prop_assert!(!seen[id.0]);
            seen[id.0] = true;
        }
    }

    #[test]
    fn liveness_never_frees_before_last_reader(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        recompute in proptest::bool::ANY,
        inplace in proptest::bool::ANY,
    ) {
        let net = build_net(&ops);
        let route = Route::construct(&net);
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions {
            enabled: true,
            recompute_non_checkpoints: recompute,
            keep_all_forward: false,
            inplace_act: inplace,
            ..Default::default()
        });
        // Replay the schedule: a tensor freed after step s must not be read
        // by any step > s, except recomputable forward outputs when the
        // recompute policy is on (the executor rebuilds those on demand).
        let mut freed_at = vec![usize::MAX; plan.tensors.len()];
        for (s, list) in plan.freed_after.iter().enumerate() {
            for t in list {
                freed_at[t.0] = s;
            }
        }
        for (s, inputs) in plan.step_inputs.iter().enumerate() {
            for t in inputs {
                let meta = &plan.tensors[t.0];
                if meta.bytes == 0 {
                    continue; // aliased tensors occupy no storage
                }
                let rebuildable = recompute
                    && !meta.is_checkpoint
                    && meta.role == sn_graph::TensorRole::FwdOut;
                if !rebuildable {
                    prop_assert!(
                        freed_at[t.0] >= s,
                        "step {s} reads tensor freed after step {}",
                        freed_at[t.0]
                    );
                }
            }
        }
        // Creation precedes every use.
        for (s, inputs) in plan.step_inputs.iter().enumerate() {
            for t in inputs {
                prop_assert!(plan.tensors[t.0].created_step <= s);
            }
        }
    }

    #[test]
    fn peak_is_monotone_in_policy_strength(
        ops in proptest::collection::vec(op_strategy(), 1..30)
    ) {
        let net = build_net(&ops);
        let route = Route::construct(&net);
        let peak = |o: LivenessOptions| {
            LivenessPlan::analyze(&net, &route, o).peak_resident(0, |_| 0).0
        };
        let baseline = peak(LivenessOptions { enabled: false, ..Default::default() });
        let live = peak(LivenessOptions::default());
        let rec = peak(LivenessOptions { recompute_non_checkpoints: true, ..Default::default() });
        prop_assert!(live <= baseline);
        prop_assert!(rec <= live);
    }
}
