//! The network DAG builder with shape inference and validation.

use sn_tensor::pool::PoolParams;
use sn_tensor::Shape4;

use crate::layer::{Layer, LayerId, LayerKind, PoolKind};

/// A nonlinear neural network: a DAG of layers with a single DATA source and
/// (by convention) a SOFTMAX sink.
#[derive(Debug, Clone)]
pub struct Net {
    pub name: String,
    layers: Vec<Layer>,
}

impl Net {
    /// Start a network with its DATA layer.
    pub fn new(name: impl Into<String>, input: Shape4) -> Self {
        let data = Layer {
            id: LayerId(0),
            name: "DATA0".into(),
            kind: LayerKind::Data { shape: input },
            prevs: vec![],
            nexts: vec![],
            out_shape: input,
        };
        Net {
            name: name.into(),
            layers: vec![data],
        }
    }

    /// The DATA layer id.
    pub fn data(&self) -> LayerId {
        LayerId(0)
    }

    /// Append a layer consuming `prevs`; returns its id. Shape inference
    /// runs immediately, so invalid wiring fails at build time.
    pub fn add(&mut self, kind: LayerKind, prevs: &[LayerId]) -> LayerId {
        assert!(!prevs.is_empty(), "non-DATA layers need at least one input");
        let id = LayerId(self.layers.len());
        let out_shape = self.infer_shape(&kind, prevs);
        let name = format!("{}{}", kind.type_name(), id.0);
        for p in prevs {
            self.layers[p.0].nexts.push(id);
        }
        self.layers.push(Layer {
            id,
            name,
            kind,
            prevs: prevs.to_vec(),
            nexts: vec![],
            out_shape,
        });
        id
    }

    /// Append a layer in a linear chain after `prev`.
    pub fn chain(&mut self, kind: LayerKind, prev: LayerId) -> LayerId {
        self.add(kind, &[prev])
    }

    fn infer_shape(&self, kind: &LayerKind, prevs: &[LayerId]) -> Shape4 {
        let shape_of = |id: LayerId| self.layers[id.0].out_shape;
        match kind {
            LayerKind::Data { shape } => *shape,
            LayerKind::Conv { .. } => {
                assert_eq!(prevs.len(), 1, "CONV takes one input");
                let p = kind.conv_params().unwrap();
                p.out_shape(shape_of(prevs[0]))
            }
            LayerKind::Pool {
                kernel,
                stride,
                pad,
                ..
            } => {
                assert_eq!(prevs.len(), 1, "POOL takes one input");
                PoolParams {
                    kernel: *kernel,
                    stride: *stride,
                    pad: *pad,
                }
                .out_shape(shape_of(prevs[0]))
            }
            LayerKind::Act | LayerKind::Bn | LayerKind::Dropout { .. } | LayerKind::Lrn { .. } => {
                assert_eq!(prevs.len(), 1, "elementwise layers take one input");
                shape_of(prevs[0])
            }
            LayerKind::LayerNorm | LayerKind::Attention { .. } | LayerKind::Mlp { .. } => {
                assert_eq!(prevs.len(), 1, "transformer blocks take one input");
                let s = shape_of(prevs[0]);
                if let LayerKind::Attention { heads } = kind {
                    assert!(
                        *heads > 0 && s.c % heads == 0,
                        "model dim {} must split across {heads} heads",
                        s.c
                    );
                }
                s
            }
            LayerKind::Embedding { dim, .. } => {
                assert_eq!(prevs.len(), 1, "EMBED takes one input");
                let s = shape_of(prevs[0]);
                assert_eq!(s.c, 1, "EMBED input carries one token id per position");
                Shape4::new(s.n, *dim, s.h, s.w)
            }
            LayerKind::Fc { out } => {
                assert_eq!(prevs.len(), 1, "FC takes one input");
                Shape4::flat(shape_of(prevs[0]).n, *out)
            }
            LayerKind::Softmax => {
                assert_eq!(prevs.len(), 1, "SOFTMAX takes one input");
                let s = shape_of(prevs[0]);
                Shape4::flat(s.n, s.features())
            }
            LayerKind::Concat => {
                assert!(prevs.len() >= 2, "CONCAT joins at least two inputs");
                let first = shape_of(prevs[0]);
                let mut c = 0;
                for p in prevs {
                    let s = shape_of(*p);
                    assert_eq!(
                        (s.n, s.h, s.w),
                        (first.n, first.h, first.w),
                        "CONCAT inputs must agree on N/H/W"
                    );
                    c += s.c;
                }
                Shape4::new(first.n, c, first.h, first.w)
            }
            LayerKind::Eltwise => {
                assert!(prevs.len() >= 2, "ELTWISE joins at least two inputs");
                let first = shape_of(prevs[0]);
                for p in prevs {
                    assert_eq!(shape_of(*p), first, "ELTWISE inputs must have equal shapes");
                }
                first
            }
        }
    }

    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.0]
    }

    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Batch size of the input.
    pub fn batch(&self) -> usize {
        self.layers[0].out_shape.n
    }

    /// Input channels of a layer (channels of its first producer).
    pub fn in_channels(&self, id: LayerId) -> usize {
        let l = self.layer(id);
        self.layers[l.prevs[0].0].out_shape.c
    }

    /// Input shape of a (single-input) layer.
    pub fn in_shape(&self, id: LayerId) -> Shape4 {
        let l = self.layer(id);
        self.layers[l.prevs[0].0].out_shape
    }

    /// Structural digest of the network: 128 bits over every layer's kind,
    /// parameters, wiring and inferred shape (two independently seeded Fx
    /// passes, so a collision needs both 64-bit digests to collide).
    ///
    /// Two nets with equal fingerprints produce identical routes, liveness
    /// plans and memory plans — this is the `net` component of the planner's
    /// memo key (`sn_runtime::plan`'s `(fingerprint, policy, device)`
    /// cache). The name is deliberately excluded: renaming a network does
    /// not change what the planner would do with it.
    pub fn fingerprint(&self) -> (u64, u64) {
        (
            self.digest(0x5275_7374_5f46_7830),
            self.digest(0x736e_5f67_7261_7068),
        )
    }

    fn digest(&self, seed: u64) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = fxhash::FxHasher::default();
        seed.hash(&mut h);
        self.layers.len().hash(&mut h);
        for l in &self.layers {
            // Discriminant + every parameter; floats by bit pattern.
            match &l.kind {
                LayerKind::Data { shape } => (0u8, shape.n, shape.c, shape.h, shape.w).hash(&mut h),
                LayerKind::Conv {
                    out_channels,
                    kernel,
                    stride,
                    pad,
                } => (1u8, out_channels, kernel, stride, pad).hash(&mut h),
                LayerKind::Pool {
                    kind,
                    kernel,
                    stride,
                    pad,
                } => (
                    2u8,
                    matches!(kind, crate::layer::PoolKind::Max),
                    kernel,
                    stride,
                    pad,
                )
                    .hash(&mut h),
                LayerKind::Act => 3u8.hash(&mut h),
                LayerKind::Lrn { local_size } => (4u8, local_size).hash(&mut h),
                LayerKind::Bn => 5u8.hash(&mut h),
                // Dropout keeps the bits it stores — digest-identical to the
                // former `p.to_bits()` special case.
                LayerKind::Dropout { p_bits } => (6u8, p_bits).hash(&mut h),
                LayerKind::Fc { out } => (7u8, out).hash(&mut h),
                LayerKind::Softmax => 8u8.hash(&mut h),
                LayerKind::Concat => 9u8.hash(&mut h),
                LayerKind::Eltwise => 10u8.hash(&mut h),
                LayerKind::Embedding { vocab, dim } => (11u8, vocab, dim).hash(&mut h),
                LayerKind::LayerNorm => 12u8.hash(&mut h),
                LayerKind::Attention { heads } => (13u8, heads).hash(&mut h),
                LayerKind::Mlp { hidden } => (14u8, hidden).hash(&mut h),
            }
            // `out_shape` is omitted deliberately: shape inference is a
            // pure function of the kinds and wiring hashed above, so it
            // adds cost without adding discrimination.
            l.prevs.hash(&mut h);
        }
        h.finish()
    }

    /// Sanity checks: connectivity, single source, acyclicity by
    /// construction (edges only point to later ids).
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("empty network".into());
        }
        if !matches!(self.layers[0].kind, LayerKind::Data { .. }) {
            return Err("layer 0 must be DATA".into());
        }
        for l in &self.layers {
            for p in &l.prevs {
                if p.0 >= l.id.0 {
                    return Err(format!("{} has a non-causal input edge", l.name));
                }
                if !self.layers[p.0].nexts.contains(&l.id) {
                    return Err(format!("asymmetric edge {} -> {}", p.0, l.id.0));
                }
            }
        }
        // Every non-terminal layer must be consumed.
        for l in &self.layers {
            let terminal = matches!(l.kind, LayerKind::Softmax);
            if !terminal && l.nexts.is_empty() {
                return Err(format!("dangling layer {}", l.name));
            }
        }
        Ok(())
    }

    /// Convenience constructors for the common kinds.
    pub fn conv(
        &mut self,
        prev: LayerId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> LayerId {
        self.chain(
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            },
            prev,
        )
    }

    pub fn max_pool(&mut self, prev: LayerId, kernel: usize, stride: usize, pad: usize) -> LayerId {
        self.chain(
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel,
                stride,
                pad,
            },
            prev,
        )
    }

    pub fn avg_pool(&mut self, prev: LayerId, kernel: usize, stride: usize, pad: usize) -> LayerId {
        self.chain(
            LayerKind::Pool {
                kind: PoolKind::Avg,
                kernel,
                stride,
                pad,
            },
            prev,
        )
    }

    pub fn relu(&mut self, prev: LayerId) -> LayerId {
        self.chain(LayerKind::Act, prev)
    }

    pub fn bn(&mut self, prev: LayerId) -> LayerId {
        self.chain(LayerKind::Bn, prev)
    }

    pub fn lrn(&mut self, prev: LayerId) -> LayerId {
        self.chain(LayerKind::Lrn { local_size: 5 }, prev)
    }

    pub fn dropout(&mut self, prev: LayerId, p: f32) -> LayerId {
        self.chain(LayerKind::dropout(p), prev)
    }

    pub fn fc(&mut self, prev: LayerId, out: usize) -> LayerId {
        self.chain(LayerKind::Fc { out }, prev)
    }

    pub fn embedding(&mut self, prev: LayerId, vocab: usize, dim: usize) -> LayerId {
        self.chain(LayerKind::Embedding { vocab, dim }, prev)
    }

    pub fn layernorm(&mut self, prev: LayerId) -> LayerId {
        self.chain(LayerKind::LayerNorm, prev)
    }

    pub fn attention(&mut self, prev: LayerId, heads: usize) -> LayerId {
        self.chain(LayerKind::Attention { heads }, prev)
    }

    pub fn mlp(&mut self, prev: LayerId, hidden: usize) -> LayerId {
        self.chain(LayerKind::Mlp { hidden }, prev)
    }

    pub fn softmax(&mut self, prev: LayerId) -> LayerId {
        self.chain(LayerKind::Softmax, prev)
    }

    pub fn concat(&mut self, prevs: &[LayerId]) -> LayerId {
        self.add(LayerKind::Concat, prevs)
    }

    pub fn eltwise(&mut self, prevs: &[LayerId]) -> LayerId {
        self.add(LayerKind::Eltwise, prevs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fan network of Fig. 3c: DATA forks into a CONV branch and a POOL
    /// branch, joined by CONCAT before FC.
    pub fn fan_net() -> Net {
        let mut net = Net::new("fan", Shape4::new(2, 3, 8, 8));
        let d = net.data();
        let c1 = net.conv(d, 4, 3, 1, 1);
        let p1 = net.max_pool(d, 2, 2, 0);
        let c2 = net.conv(p1, 4, 3, 2, 1); // brings it to 4x4? 8->4 pool, conv stride2 -> 2x2
        let c1p = net.max_pool(c1, 4, 4, 0); // 8 -> 2
        let j = net.concat(&[c1p, c2]);
        let f = net.fc(j, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn shapes_infer_through_fan_and_join() {
        let net = fan_net();
        net.validate().unwrap();
        let j = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Concat))
            .unwrap();
        assert_eq!(j.out_shape, Shape4::new(2, 8, 2, 2));
    }

    #[test]
    fn eltwise_requires_matching_shapes() {
        let mut net = Net::new("t", Shape4::new(1, 4, 4, 4));
        let d = net.data();
        let a = net.conv(d, 4, 3, 1, 1);
        let r = net.eltwise(&[a, d]);
        assert_eq!(net.layer(r).out_shape, Shape4::new(1, 4, 4, 4));
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn eltwise_rejects_mismatched_shapes() {
        let mut net = Net::new("t", Shape4::new(1, 4, 4, 4));
        let d = net.data();
        let a = net.conv(d, 8, 3, 1, 1);
        net.eltwise(&[a, d]);
    }

    #[test]
    fn validation_catches_dangling_layers() {
        let mut net = Net::new("t", Shape4::new(1, 1, 4, 4));
        let d = net.data();
        let _orphan = net.conv(d, 2, 3, 1, 1);
        let c = net.conv(d, 2, 3, 1, 1);
        let f = net.fc(c, 2);
        net.softmax(f);
        assert!(net.validate().unwrap_err().contains("dangling"));
    }

    #[test]
    fn transformer_shapes_infer() {
        let mut net = Net::new("t", Shape4::new(2, 1, 6, 1));
        let d = net.data();
        let e = net.embedding(d, 100, 8);
        assert_eq!(net.layer(e).out_shape, Shape4::new(2, 8, 6, 1));
        let ln = net.layernorm(e);
        let a = net.attention(ln, 4);
        let m = net.mlp(a, 32);
        assert_eq!(net.layer(m).out_shape, Shape4::new(2, 8, 6, 1));
        net.softmax(m);
        net.validate().unwrap();
        // A different head count or hidden width changes the fingerprint.
        let fp = net.fingerprint();
        let mut other = Net::new("t", Shape4::new(2, 1, 6, 1));
        let d = other.data();
        let e = other.embedding(d, 100, 8);
        let ln = other.layernorm(e);
        let a = other.attention(ln, 2);
        let m = other.mlp(a, 32);
        other.softmax(m);
        assert_ne!(fp, other.fingerprint());
    }

    #[test]
    #[should_panic(expected = "must split across")]
    fn attention_rejects_indivisible_heads() {
        let mut net = Net::new("t", Shape4::new(1, 1, 4, 1));
        let d = net.data();
        let e = net.embedding(d, 10, 6);
        net.attention(e, 4);
    }

    #[test]
    fn fc_flattens() {
        let mut net = Net::new("t", Shape4::new(3, 2, 5, 5));
        let d = net.data();
        let f = net.fc(d, 7);
        net.softmax(f);
        assert_eq!(net.layer(f).out_shape, Shape4::flat(3, 7));
    }

    /// A small builder parameterized so each test case perturbs exactly one
    /// structural property.
    fn tower(batch: usize, ch: usize, kernel: usize, acts: usize, name: &str) -> Net {
        let mut net = Net::new(name, Shape4::new(batch, 3, 16, 16));
        let mut prev = net.data();
        let c = net.conv(prev, ch, kernel, 1, kernel / 2);
        prev = c;
        for _ in 0..acts {
            prev = net.relu(prev);
        }
        let f = net.fc(prev, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn fingerprint_is_stable_for_equal_nets() {
        // Two independent constructions of the same structure digest equal —
        // the group memo key (fingerprint, policy, device, replicas) relies
        // on this to share gang compilations across identical jobs.
        let a = tower(8, 16, 3, 1, "a");
        let b = tower(8, 16, 3, 1, "a");
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Repeated calls are stable (no interior mutation).
        assert_eq!(a.fingerprint(), a.fingerprint());
        // The name is deliberately excluded: renaming changes nothing the
        // planner would do.
        let renamed = tower(8, 16, 3, 1, "something-else");
        assert_eq!(a.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn single_layer_perturbations_change_the_fingerprint() {
        let base = tower(8, 16, 3, 1, "t").fingerprint();
        // One changed parameter anywhere — batch, a layer's channel count,
        // a kernel size, or one extra layer — must produce a different
        // 128-bit digest.
        assert_ne!(base, tower(16, 16, 3, 1, "t").fingerprint(), "batch");
        assert_ne!(base, tower(8, 32, 3, 1, "t").fingerprint(), "channels");
        assert_ne!(base, tower(8, 16, 5, 1, "t").fingerprint(), "kernel");
        assert_ne!(base, tower(8, 16, 3, 2, "t").fingerprint(), "extra layer");
        // Rewiring with identical layer multiset: fan vs chain.
        let fan = fan_net().fingerprint();
        assert_ne!(base, fan, "wiring");
    }

    #[test]
    fn fan_out_is_observable() {
        let net = fan_net();
        assert!(net.layer(net.data()).is_fan_out());
        let j = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Concat))
            .unwrap();
        assert!(j.is_join());
    }
}
