//! Per-net element precision: the standard AMP (automatic mixed precision)
//! recipe, described as *which dtype each tensor class lives in*.
//!
//! Activations and gradients may be half-width (`F16`/`BF16`); master
//! weights, weight gradients, and optimizer state stay `F32` — that is the
//! invariant of the AMP recipe, so [`Precision`] carries no weight dtype.
//! The descriptor threads through the cost model ([`crate::NetCost`]),
//! liveness analysis, planner byte accounting, and data-parallel wire-byte
//! model; it never changes *which* tensors exist, only how many bytes each
//! occupies.

use sn_tensor::DType;

/// Element precision of a network's activation and gradient tensors.
/// Master weights are always `F32` (the AMP invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Dtype of forward activations (layer outputs).
    pub activations: DType,
    /// Dtype of backward activation gradients (`dY`) — and therefore of the
    /// all-reduce payload in data-parallel training.
    pub gradients: DType,
}

impl Precision {
    /// Full single precision — the CNN baseline; byte-identical to the
    /// pre-dtype accounting.
    pub const fn fp32() -> Precision {
        Precision {
            activations: DType::F32,
            gradients: DType::F32,
        }
    }

    /// bf16 mixed precision: half-width activations and gradients over fp32
    /// master weights.
    pub const fn bf16_mixed() -> Precision {
        Precision {
            activations: DType::BF16,
            gradients: DType::BF16,
        }
    }

    /// fp16 mixed precision (same byte accounting as bf16).
    pub const fn fp16_mixed() -> Precision {
        Precision {
            activations: DType::F16,
            gradients: DType::F16,
        }
    }

    /// Short tag for report rows, e.g. `fp32` / `bf16`.
    pub fn tag(&self) -> &'static str {
        match self.activations {
            DType::F32 => "fp32",
            DType::F16 => "fp16",
            DType::BF16 => "bf16",
        }
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::fp32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fp32_and_presets_differ() {
        assert_eq!(Precision::default(), Precision::fp32());
        assert_ne!(Precision::fp32(), Precision::bf16_mixed());
        assert_eq!(Precision::bf16_mixed().activations.size_of(), 2);
        assert_eq!(Precision::fp32().gradients.size_of(), 4);
        assert_eq!(Precision::bf16_mixed().tag(), "bf16");
    }
}
