//! Layer descriptors: the basic building layers of §2.1 plus the two
//! nonlinear joins of Fig. 1.

use sn_tensor::conv::ConvParams;
use sn_tensor::Shape4;

/// Index of a layer within its [`crate::Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub usize);

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    Max,
    Avg,
}

/// The layer vocabulary. Every network in the paper's evaluation (AlexNet,
/// VGG, ResNet, Inception v4, DenseNet) is expressible with these kinds,
/// and the transformer additions (EMBED/LNORM/ATTN/MLP) open the GPT-style
/// workloads. Dropout stores its probability as raw `f32` bits so the whole
/// vocabulary is `Eq + Hash` — fingerprinting and memo keys need no
/// float special-casing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Input batch producer (shape is the batch shape).
    Data { shape: Shape4 },
    /// Convolution.
    Conv {
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    /// Max/average pooling.
    Pool {
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    /// ReLU activation.
    Act,
    /// Cross-channel local response normalization.
    Lrn { local_size: usize },
    /// Batch normalization.
    Bn,
    /// Dropout with drop probability `f32::from_bits(p_bits)` (stored as
    /// bits so the enum derives `Eq + Hash`; build via [`LayerKind::dropout`]).
    Dropout { p_bits: u32 },
    /// Fully connected with `out` output features.
    Fc { out: usize },
    /// Softmax + cross-entropy loss (terminal layer).
    Softmax,
    /// Channel-wise concatenation join (fan-in, Fig. 1a / DenseNet).
    Concat,
    /// Elementwise addition join (residual connection, Fig. 1b).
    Eltwise,
    /// Token-embedding gather: `N×1×S×1` ids → `N×dim×S×1` vectors.
    Embedding { vocab: usize, dim: usize },
    /// Layer normalization over the channel (model) dimension.
    LayerNorm,
    /// Multi-head self-attention over the sequence (`H·W`) axis.
    Attention { heads: usize },
    /// Position-wise two-layer MLP block with `hidden` inner features.
    Mlp { hidden: usize },
}

impl LayerKind {
    /// Dropout with drop probability `p` (stored as bits, see the variant).
    pub fn dropout(p: f32) -> LayerKind {
        LayerKind::Dropout {
            p_bits: p.to_bits(),
        }
    }

    /// Drop probability of a [`LayerKind::Dropout`], `None` otherwise.
    pub fn dropout_p(&self) -> Option<f32> {
        match self {
            LayerKind::Dropout { p_bits } => Some(f32::from_bits(*p_bits)),
            _ => None,
        }
    }

    /// Short type name used in reports (matches the paper's Fig. 8 legend).
    pub fn type_name(&self) -> &'static str {
        match self {
            LayerKind::Data { .. } => "DATA",
            LayerKind::Conv { .. } => "CONV",
            LayerKind::Pool { .. } => "POOL",
            LayerKind::Act => "ACT",
            LayerKind::Lrn { .. } => "LRN",
            LayerKind::Bn => "BN",
            LayerKind::Dropout { .. } => "DROPOUT",
            LayerKind::Fc { .. } => "FC",
            LayerKind::Softmax => "SOFTMAX",
            LayerKind::Concat => "CONCAT",
            LayerKind::Eltwise => "ELTWISE",
            LayerKind::Embedding { .. } => "EMBED",
            LayerKind::LayerNorm => "LNORM",
            LayerKind::Attention { .. } => "ATTN",
            LayerKind::Mlp { .. } => "MLP",
        }
    }

    /// Is this layer a *checkpoint* under the recomputation policy?
    ///
    /// Checkpoints are layers whose outputs are kept (and, for CONV/DATA,
    /// offloaded via the Unified Tensor Pool) rather than recomputed:
    /// compute-intensive layers (CONV, FC, and the GEMM-dominated
    /// transformer blocks EMBED/ATTN/MLP), structural layers whose inputs
    /// cross recompute-segment boundaries (DATA, CONCAT, ELTWISE), and the
    /// terminal SOFTMAX. The remaining kinds — POOL, ACT, LRN, BN, DROPOUT,
    /// LNORM — are the paper's "cheap-to-compute" layers whose forward
    /// results are dropped and reconstructed (§3.4).
    pub fn is_checkpoint(&self) -> bool {
        matches!(
            self,
            LayerKind::Data { .. }
                | LayerKind::Conv { .. }
                | LayerKind::Fc { .. }
                | LayerKind::Softmax
                | LayerKind::Concat
                | LayerKind::Eltwise
                | LayerKind::Embedding { .. }
                | LayerKind::Attention { .. }
                | LayerKind::Mlp { .. }
        )
    }

    /// Is this layer's output offloaded to the host by the UTP? The paper
    /// offloads only CONV outputs (plus the input batch, which by the same
    /// argument — large, produced early, reused late — we offload too). The
    /// transformer checkpoints (EMBED/ATTN/MLP) qualify by the same
    /// large-early-reused-late argument.
    pub fn is_offload_candidate(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::Data { .. }
                | LayerKind::Embedding { .. }
                | LayerKind::Attention { .. }
                | LayerKind::Mlp { .. }
        )
    }

    /// Does this layer's backward computation need its *input* tensor(s)?
    ///
    /// We use input-based backward formulations throughout (as cuDNN and the
    /// paper's accounting do): ReLU masks by `x > 0`, LRN re-derives its
    /// denominators from `x`, max-pool re-derives routing from `x`, dropout
    /// reads its input alongside the regenerated mask, `dW = dY ⊛ X` for
    /// CONV/FC, and BN renormalizes `x` with the saved statistics.
    pub fn bwd_needs_input(&self) -> bool {
        match self {
            LayerKind::Conv { .. }
            | LayerKind::Fc { .. }
            | LayerKind::Pool { .. }
            | LayerKind::Bn
            | LayerKind::Lrn { .. }
            | LayerKind::Act
            | LayerKind::Dropout { .. }
            // The transformer kernels are all input-formulated: embedding
            // re-hashes token ids, layernorm re-derives its statistics, and
            // attention/MLP re-derive q/k/v/probabilities/hidden from `x`.
            | LayerKind::Embedding { .. }
            | LayerKind::LayerNorm
            | LayerKind::Attention { .. }
            | LayerKind::Mlp { .. } => true,
            // The joins and softmax pass gradients without touching inputs.
            LayerKind::Softmax
            | LayerKind::Concat
            | LayerKind::Eltwise
            | LayerKind::Data { .. } => false,
        }
    }

    /// Does this layer's backward computation need its *output* tensor?
    pub fn bwd_needs_output(&self) -> bool {
        // Softmax gradient is `P − onehot(label)`, computed from the stored
        // probabilities. Everything else is input-formulated (see above).
        matches!(self, LayerKind::Softmax)
    }

    /// Does this layer carry trainable parameters?
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::Fc { .. }
                | LayerKind::Bn
                | LayerKind::Embedding { .. }
                | LayerKind::LayerNorm
                | LayerKind::Attention { .. }
                | LayerKind::Mlp { .. }
        )
    }

    /// View as convolution parameters (for the workspace machinery).
    pub fn conv_params(&self) -> Option<ConvParams> {
        match self {
            LayerKind::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => Some(ConvParams {
                out_channels: *out_channels,
                kernel: *kernel,
                stride: *stride,
                pad: *pad,
            }),
            _ => None,
        }
    }
}

/// A node of the network DAG.
#[derive(Debug, Clone)]
pub struct Layer {
    pub id: LayerId,
    /// Display name, e.g. `CONV2` or `res3b_branch2a`.
    pub name: String,
    pub kind: LayerKind,
    /// Input edges (layers whose outputs this layer consumes), in argument
    /// order (significant for CONCAT).
    pub prevs: Vec<LayerId>,
    /// Output edges.
    pub nexts: Vec<LayerId>,
    /// Inferred output shape.
    pub out_shape: Shape4,
}

impl Layer {
    /// Is this layer a fan-out point (multiple consumers)?
    pub fn is_fan_out(&self) -> bool {
        self.nexts.len() > 1
    }

    /// Is this layer a join (multiple producers feed it)?
    pub fn is_join(&self) -> bool {
        self.prevs.len() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_classification_follows_the_paper() {
        assert!(LayerKind::Conv {
            out_channels: 1,
            kernel: 1,
            stride: 1,
            pad: 0
        }
        .is_checkpoint());
        assert!(LayerKind::Fc { out: 10 }.is_checkpoint());
        assert!(LayerKind::Softmax.is_checkpoint());
        assert!(!LayerKind::Act.is_checkpoint());
        assert!(!LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
            pad: 0
        }
        .is_checkpoint());
        assert!(!LayerKind::Bn.is_checkpoint());
        assert!(!LayerKind::Lrn { local_size: 5 }.is_checkpoint());
        assert!(!LayerKind::dropout(0.5).is_checkpoint());
        // Transformer blocks: GEMM-dominated layers checkpoint, LNORM is
        // cheap recompute.
        assert!(LayerKind::Embedding { vocab: 100, dim: 8 }.is_checkpoint());
        assert!(LayerKind::Attention { heads: 4 }.is_checkpoint());
        assert!(LayerKind::Mlp { hidden: 32 }.is_checkpoint());
        assert!(!LayerKind::LayerNorm.is_checkpoint());
    }

    #[test]
    fn layer_kinds_are_hashable_and_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(LayerKind::dropout(0.5));
        set.insert(LayerKind::dropout(0.5));
        set.insert(LayerKind::dropout(0.25));
        set.insert(LayerKind::Attention { heads: 4 });
        assert_eq!(set.len(), 3);
        assert_eq!(LayerKind::dropout(0.5).dropout_p(), Some(0.5));
        assert_eq!(LayerKind::Act.dropout_p(), None);
    }

    #[test]
    fn only_conv_and_data_offload() {
        assert!(LayerKind::Conv {
            out_channels: 1,
            kernel: 3,
            stride: 1,
            pad: 1
        }
        .is_offload_candidate());
        assert!(LayerKind::Data {
            shape: Shape4::new(1, 1, 1, 1)
        }
        .is_offload_candidate());
        assert!(!LayerKind::Fc { out: 10 }.is_offload_candidate());
        assert!(!LayerKind::Act.is_offload_candidate());
        assert!(LayerKind::Embedding { vocab: 100, dim: 8 }.is_offload_candidate());
        assert!(LayerKind::Attention { heads: 4 }.is_offload_candidate());
        assert!(LayerKind::Mlp { hidden: 32 }.is_offload_candidate());
        assert!(!LayerKind::LayerNorm.is_offload_candidate());
    }

    #[test]
    fn backward_dependency_flags() {
        assert!(LayerKind::Conv {
            out_channels: 1,
            kernel: 3,
            stride: 1,
            pad: 1
        }
        .bwd_needs_input());
        assert!(!LayerKind::Act.bwd_needs_output());
        assert!(LayerKind::Act.bwd_needs_input());
        assert!(!LayerKind::Eltwise.bwd_needs_input());
        assert!(LayerKind::Softmax.bwd_needs_output());
        assert!(LayerKind::dropout(0.5).bwd_needs_input());
        assert!(LayerKind::Attention { heads: 2 }.bwd_needs_input());
        assert!(LayerKind::LayerNorm.bwd_needs_input());
        assert!(!LayerKind::Attention { heads: 2 }.bwd_needs_output());
    }
}
