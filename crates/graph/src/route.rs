//! Algorithm 1: execution-route construction for nonlinear architectures.
//!
//! The route is a depth-first exploration from the DATA layer, except that a
//! join may only be entered once *all* of its producers have executed; each
//! layer carries a counter of satisfied input dependencies (lines 4–6 of
//! Alg. 1). One training iteration is then `N` forward steps in route order
//! followed by `N` backward steps in reverse route order (Fig. 6's left/right
//! step digits).

use crate::layer::LayerId;
use crate::net::Net;

/// Phase of a step within an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepPhase {
    Forward,
    Backward,
}

/// What kind of pass the route schedules.
///
/// A *training* route runs `N` forward steps then `N` backward steps (the
/// paper's Fig. 6); an *inference* route is forward-only — `N` steps, no
/// gradients, every output freeable at its last forward reader. The planner
/// compiles very different [`crate::LivenessPlan`]s from the two kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    Training,
    Inference,
}

/// One scheduled computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    /// Global index in `0..2N`.
    pub index: usize,
    pub layer: LayerId,
    pub phase: StepPhase,
}

/// The constructed execution order.
#[derive(Debug, Clone)]
pub struct Route {
    /// Forward order (length `N`).
    pub fwd: Vec<LayerId>,
    /// Backward order — the reverse of `fwd` (empty for inference routes).
    pub bwd: Vec<LayerId>,
    fwd_step: Vec<usize>,
    bwd_step: Vec<usize>,
    kind: RouteKind,
}

impl Route {
    /// Run Algorithm 1 on `net`.
    ///
    /// Implemented with an explicit stack (ResNet-2500 produces ~10⁴-layer
    /// routes; recursion depth would track network depth). Children are
    /// pushed in reverse so exploration order matches the recursive DFS of
    /// the paper's pseudo-code.
    pub fn construct(net: &Net) -> Route {
        Route::construct_kind(net, RouteKind::Training)
    }

    /// A forward-only route over the same Algorithm 1 order: `N` steps, no
    /// backward half. The basis of inference [`MemoryPlan`]s — outputs are
    /// freed at their last *forward* reader and no gradients ever exist.
    ///
    /// [`MemoryPlan`]: ../sn_runtime/plan/struct.MemoryPlan.html
    pub fn construct_inference(net: &Net) -> Route {
        Route::construct_kind(net, RouteKind::Inference)
    }

    fn construct_kind(net: &Net, kind: RouteKind) -> Route {
        let n = net.len();
        let mut counter = vec![0usize; n];
        let mut fwd: Vec<LayerId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        let mut stack: Vec<LayerId> = vec![net.data()];

        while let Some(id) = stack.pop() {
            let layer = net.layer(id);
            counter[id.0] += 1;
            // A join proceeds only when every producer has finished
            // (`layer->get_counter < size of prev layers` ⇒ return).
            if counter[id.0] < layer.prevs.len() {
                continue;
            }
            debug_assert!(!placed[id.0], "layer {} scheduled twice", layer.name);
            placed[id.0] = true;
            fwd.push(id);
            // Reverse push keeps the first `next` on top of the stack,
            // matching the recursive exploration order.
            for next in layer.nexts.iter().rev() {
                stack.push(*next);
            }
        }

        assert_eq!(
            fwd.len(),
            n,
            "route construction reached {} of {} layers — disconnected graph?",
            fwd.len(),
            n
        );

        let mut fwd_step = vec![0usize; n];
        let mut bwd_step = vec![0usize; n];
        for (s, id) in fwd.iter().enumerate() {
            fwd_step[id.0] = s;
            bwd_step[id.0] = 2 * n - 1 - s;
        }
        let bwd: Vec<LayerId> = match kind {
            RouteKind::Training => fwd.iter().rev().copied().collect(),
            RouteKind::Inference => Vec::new(),
        };
        Route {
            fwd,
            bwd,
            fwd_step,
            bwd_step,
            kind,
        }
    }

    /// Number of layers `N`.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Training or inference?
    pub fn kind(&self) -> RouteKind {
        self.kind
    }

    /// Does this route schedule a backward half?
    #[inline]
    pub fn has_backward(&self) -> bool {
        self.kind == RouteKind::Training
    }

    /// Total step count: `2N` for training, `N` for inference.
    pub fn total_steps(&self) -> usize {
        match self.kind {
            RouteKind::Training => 2 * self.fwd.len(),
            RouteKind::Inference => self.fwd.len(),
        }
    }

    /// Forward step index of a layer (`0..N`).
    #[inline]
    pub fn fwd_step(&self, id: LayerId) -> usize {
        self.fwd_step[id.0]
    }

    /// Backward step index of a layer (`N..2N`). Only meaningful on training
    /// routes — inference routes have no backward half.
    #[inline]
    pub fn bwd_step(&self, id: LayerId) -> usize {
        debug_assert!(self.has_backward(), "inference routes have no backward");
        self.bwd_step[id.0]
    }

    /// The step at global index `i`.
    #[inline]
    pub fn step(&self, i: usize) -> Step {
        let n = self.fwd.len();
        if i < n {
            Step {
                index: i,
                layer: self.fwd[i],
                phase: StepPhase::Forward,
            }
        } else {
            debug_assert!(self.has_backward());
            Step {
                index: i,
                layer: self.bwd[i - n],
                phase: StepPhase::Backward,
            }
        }
    }

    /// Iterate all `2N` steps of one iteration.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        (0..self.total_steps()).map(|i| self.step(i))
    }

    /// Verify the route is a valid topological order of the net.
    pub fn validate(&self, net: &Net) -> Result<(), String> {
        for (s, id) in self.fwd.iter().enumerate() {
            for p in &net.layer(*id).prevs {
                if self.fwd_step(*p) >= s {
                    return Err(format!(
                        "layer {} scheduled before its input {}",
                        net.layer(*id).name,
                        net.layer(*p).name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use sn_tensor::Shape4;

    fn linear_net() -> Net {
        let mut net = Net::new("lin", Shape4::new(1, 3, 8, 8));
        let d = net.data();
        let c = net.conv(d, 4, 3, 1, 1);
        let r = net.relu(c);
        let p = net.max_pool(r, 2, 2, 0);
        let f = net.fc(p, 10);
        net.softmax(f);
        net
    }

    /// The nested-fan network of Fig. 6: `a` fans to `{b, c, d}`-style
    /// branches with a second fan nested inside one branch.
    fn nested_fan_net() -> (Net, Vec<LayerId>) {
        let mut net = Net::new("fig6", Shape4::new(1, 4, 8, 8));
        let a = net.data();
        // First fan: branch 1 = b -> e_pre, branch 2 = c, d
        let b = net.conv(a, 4, 3, 1, 1);
        let c = net.conv(a, 4, 3, 1, 1);
        let d = net.conv(a, 4, 3, 1, 1);
        let e = net.concat(&[b, c, d]);
        // Nested fan out of e: f, g, h joined at i.
        let f = net.conv(e, 4, 3, 1, 1);
        let g = net.conv(e, 4, 3, 1, 1);
        let h = net.conv(e, 4, 3, 1, 1);
        let i = net.concat(&[f, g, h]);
        let j = net.softmax(i);
        (net, vec![a, b, c, d, e, f, g, h, i, j])
    }

    #[test]
    fn linear_route_is_sequential() {
        let net = linear_net();
        let r = Route::construct(&net);
        r.validate(&net).unwrap();
        let order: Vec<usize> = r.fwd.iter().map(|l| l.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(r.total_steps(), 12);
    }

    #[test]
    fn backward_is_reverse_of_forward() {
        let net = linear_net();
        let r = Route::construct(&net);
        let mut rev = r.fwd.clone();
        rev.reverse();
        assert_eq!(r.bwd, rev);
        // Step indices mirror: fwd k <-> bwd 2N-1-k.
        for id in &r.fwd {
            assert_eq!(r.bwd_step(*id), r.total_steps() - 1 - r.fwd_step(*id));
        }
    }

    #[test]
    fn join_waits_for_all_producers() {
        let (net, ids) = nested_fan_net();
        let r = Route::construct(&net);
        r.validate(&net).unwrap();
        let pos = |l: LayerId| r.fwd_step(l);
        let (b, c, d, e) = (ids[1], ids[2], ids[3], ids[4]);
        assert!(pos(e) > pos(b) && pos(e) > pos(c) && pos(e) > pos(d));
        // Nested join i waits for f, g, h (the "prerequisites for executing
        // i" of Fig. 6).
        let (f, g, h, i) = (ids[5], ids[6], ids[7], ids[8]);
        assert!(pos(i) > pos(f) && pos(i) > pos(g) && pos(i) > pos(h));
    }

    #[test]
    fn every_layer_scheduled_exactly_once() {
        let (net, _) = nested_fan_net();
        let r = Route::construct(&net);
        let mut seen = vec![false; net.len()];
        for id in &r.fwd {
            assert!(!seen[id.0], "duplicate schedule");
            seen[id.0] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn dfs_explores_first_branch_first() {
        let (net, ids) = nested_fan_net();
        let r = Route::construct(&net);
        // b was added before c and d, so DFS visits it first.
        assert!(r.fwd_step(ids[1]) < r.fwd_step(ids[2]));
        assert!(r.fwd_step(ids[2]) < r.fwd_step(ids[3]));
    }

    #[test]
    fn residual_join_routes_validly() {
        let mut net = Net::new("res", Shape4::new(1, 4, 8, 8));
        let d = net.data();
        let c1 = net.conv(d, 4, 3, 1, 1);
        let b1 = net.bn(c1);
        let r1 = net.relu(b1);
        let c2 = net.conv(r1, 4, 3, 1, 1);
        let b2 = net.bn(c2);
        let e = net.eltwise(&[b2, c1]); // join: skip from c1
        let r2 = net.relu(e);
        let f = net.fc(r2, 10);
        net.softmax(f);
        let r = Route::construct(&net);
        r.validate(&net).unwrap();
        assert_eq!(r.len(), net.len());
    }

    #[test]
    fn inference_route_is_forward_only() {
        let net = linear_net();
        let r = Route::construct_inference(&net);
        r.validate(&net).unwrap();
        assert_eq!(r.kind(), RouteKind::Inference);
        assert!(!r.has_backward());
        assert_eq!(r.total_steps(), net.len());
        assert!(r.bwd.is_empty());
        let steps: Vec<Step> = r.steps().collect();
        assert!(steps.iter().all(|s| s.phase == StepPhase::Forward));
        // Same Algorithm 1 forward order as the training route.
        assert_eq!(r.fwd, Route::construct(&net).fwd);
    }

    #[test]
    fn steps_iterator_covers_both_phases() {
        let net = linear_net();
        let r = Route::construct(&net);
        let steps: Vec<Step> = r.steps().collect();
        assert_eq!(steps.len(), 12);
        assert!(steps[..6].iter().all(|s| s.phase == StepPhase::Forward));
        assert!(steps[6..].iter().all(|s| s.phase == StepPhase::Backward));
        assert_eq!(steps[5].layer, steps[6].layer, "turnaround at softmax");
        // Data layer guard: first fwd is DATA and last bwd is DATA.
        assert!(matches!(
            net.layer(steps[0].layer).kind,
            LayerKind::Data { .. }
        ));
        assert_eq!(steps[11].layer, steps[0].layer);
    }
}
