//! # sn-graph — nonlinear network graphs, execution routes, liveness, costs
//!
//! The paper's Challenge II is that nonlinear networks (fan/join) break the
//! static scheduling assumptions of linear frameworks. This crate provides:
//!
//! * [`layer`] / [`net`]: layer descriptors and the DAG builder with shape
//!   inference (CONV, POOL, ACT, FC, LRN, BN, DROPOUT, SOFTMAX, DATA, plus
//!   the two nonlinear joins: CONCAT for fan-in and ELTWISE for residual
//!   connections — fan-out is a layer with several `next` edges);
//! * [`route`]: **Algorithm 1** — the DFS-with-join-counters construction of
//!   the execution order for arbitrary nonlinear architectures;
//! * [`liveness`]: the tensor registry (forward outputs, gradients, weights)
//!   and the liveness analysis that turns consumer lists into per-step
//!   create/free schedules, with the paper's explicit in/out-set variant for
//!   validation;
//! * [`cost`]: per-layer memory (`l_f`, `l_b`) and FLOP/byte cost models that
//!   drive the virtual-time executor and the Fig. 8 breakdowns;
//! * [`precision`]: the AMP descriptor (activation/gradient dtype over fp32
//!   master weights) that makes cost and liveness byte accounting
//!   dtype-exact.

pub mod cost;
pub mod layer;
pub mod liveness;
pub mod net;
pub mod precision;
pub mod route;

pub use cost::{LayerCost, NetCost};
pub use layer::{Layer, LayerId, LayerKind, PoolKind};
pub use liveness::{LivenessPlan, TensorId, TensorMeta, TensorRole};
pub use net::Net;
pub use precision::Precision;
pub use route::{Route, RouteKind, Step, StepPhase};
pub use sn_tensor::{DType, Shape4};
