//! Per-layer memory and compute cost models.
//!
//! These drive everything quantitative: `l_f`/`l_b` (the memory terms of the
//! paper's `peak_m` formulas), virtual execution times, and the Fig. 8
//! breakdowns by layer type. FLOP counts are the standard analytic ones;
//! execution time is the max of a compute-bound term (FLOPs over effective
//! throughput) and a bandwidth-bound term (bytes moved over DRAM bandwidth),
//! plus a fixed kernel-launch overhead — the usual roofline shape that makes
//! CONV/FC compute-bound and POOL/ACT/BN/LRN bandwidth-bound, which is
//! precisely the asymmetry Cost-Aware Recomputation exploits.

use sn_sim::{DeviceSpec, SimTime};

use crate::layer::{Layer, LayerId, LayerKind};
use crate::net::Net;
use crate::precision::Precision;

/// Arithmetic efficiency (fraction of peak FLOP/s) by layer family.
fn efficiency(kind: &LayerKind) -> f64 {
    match kind {
        LayerKind::Conv { .. } => 0.50,
        // GEMM-dominated layers: FC and the transformer attention/MLP blocks
        // run the same tiled-GEMM kernels.
        LayerKind::Fc { .. } | LayerKind::Attention { .. } | LayerKind::Mlp { .. } => 0.35,
        // Elementwise/pooling kernels never approach peak arithmetic
        // throughput; their time is dominated by the bandwidth term anyway.
        _ => 0.10,
    }
}

/// Static cost description of one layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerCost {
    /// Forward FLOPs.
    pub fwd_flops: u64,
    /// Backward FLOPs (data + weight gradients).
    pub bwd_flops: u64,
    /// Bytes touched by the forward kernel (reads + writes).
    pub fwd_bytes_moved: u64,
    /// Bytes touched by the backward kernel.
    pub bwd_bytes_moved: u64,
    /// Output tensor bytes — the dominant component of `l_f`.
    pub out_bytes: u64,
    /// Trainable parameter bytes (weights + biases), resident all iteration.
    pub weight_bytes: u64,
    /// Output-gradient tensor bytes (`dY`), the dominant component of `l_b`.
    pub grad_bytes: u64,
    /// Weight-gradient bytes, transient within the backward step.
    pub wgrad_bytes: u64,
    /// Non-conv forward workspace (e.g. max-pool argmax mask, attention
    /// score matrices), transient.
    pub fwd_workspace: u64,
    /// Total bytes of the layer's input tensors.
    pub in_bytes: u64,
    /// Bytes this layer contributes to the data-parallel all-reduce: its
    /// weight-gradient *elements* at the gradient dtype. Equals
    /// `weight_bytes` at fp32; half of it under bf16/f16 mixed precision.
    pub allreduce_bytes: u64,
    /// Does the backward kernel read the input tensor (input-formulated)?
    pub bwd_reads_input: bool,
}

impl LayerCost {
    /// Build the fp32 cost model for `layer` within `net` — shorthand for
    /// [`LayerCost::with_precision`] at [`Precision::fp32`].
    pub fn of(net: &Net, layer: &Layer) -> LayerCost {
        Self::with_precision(net, layer, Precision::fp32())
    }

    /// Build the cost model for `layer` within `net` at `precision`.
    ///
    /// Activation-class tensors (outputs, inputs, activation gradients, GEMM
    /// workspaces) scale by the activation/gradient dtype; master weights,
    /// weight gradients, and the pool argmax mask stay fp32/u32.
    pub fn with_precision(net: &Net, layer: &Layer, precision: Precision) -> LayerCost {
        let out = layer.out_shape;
        let out_elems = out.numel() as u64;
        let act = precision.activations;
        let out_bytes = out.bytes_of(act);
        let in_shape = if layer.prevs.is_empty() {
            out
        } else {
            net.layer(layer.prevs[0]).out_shape
        };
        let in_bytes: u64 = layer
            .prevs
            .iter()
            .map(|p| net.layer(*p).out_shape.bytes_of(act))
            .sum();

        let mut c = LayerCost {
            out_bytes,
            grad_bytes: out.bytes_of(precision.gradients),
            in_bytes,
            bwd_reads_input: layer.kind.bwd_needs_input(),
            ..Default::default()
        };

        match &layer.kind {
            LayerKind::Data { .. } => {
                // Producing the batch: a host copy, costed as bytes moved.
                c.fwd_bytes_moved = out_bytes;
                c.grad_bytes = 0; // no gradient w.r.t. input data
            }
            LayerKind::Conv { kernel, .. } => {
                let cin = net.in_channels(layer.id) as u64;
                let k = *kernel as u64;
                let macs = out_elems * cin * k * k;
                c.fwd_flops = 2 * macs;
                // backward-data + backward-filter ≈ 2× forward.
                c.bwd_flops = 4 * macs;
                let w = cin * (out.c as u64) * k * k * 4 + out.c as u64 * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes + out_bytes + w;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes) + 2 * w;
            }
            LayerKind::Fc { out: k } => {
                let f = in_shape.features() as u64;
                let n = in_shape.n as u64;
                let k = *k as u64;
                c.fwd_flops = 2 * n * f * k;
                c.bwd_flops = 4 * n * f * k;
                let w = f * k * 4 + k * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes + out_bytes + w;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes) + 2 * w;
            }
            LayerKind::Pool { kernel, .. } => {
                let k = *kernel as u64;
                c.fwd_flops = out_elems * k * k;
                c.bwd_flops = out_elems;
                c.fwd_bytes_moved = in_bytes + out_bytes;
                c.bwd_bytes_moved = in_bytes + out_bytes;
                // argmax mask: one u32 per output element.
                c.fwd_workspace = out_elems * 4;
            }
            LayerKind::Act => {
                c.fwd_flops = out_elems;
                c.bwd_flops = out_elems;
                c.fwd_bytes_moved = in_bytes + out_bytes;
                c.bwd_bytes_moved = 2 * out_bytes;
            }
            LayerKind::Lrn { local_size } => {
                let ls = *local_size as u64;
                c.fwd_flops = out_elems * (2 * ls + 2);
                c.bwd_flops = out_elems * (3 * ls + 3);
                c.fwd_bytes_moved = in_bytes * 2 + out_bytes;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes);
            }
            LayerKind::Bn => {
                c.fwd_flops = out_elems * 4;
                c.bwd_flops = out_elems * 7;
                // gamma/beta (+ running stats): 4 floats per channel.
                let w = out.c as u64 * 4 * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = out.c as u64 * 2 * 4;
                c.fwd_bytes_moved = in_bytes * 2 + out_bytes;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes);
            }
            LayerKind::Dropout { .. } => {
                c.fwd_flops = 2 * out_elems;
                c.bwd_flops = 2 * out_elems;
                c.fwd_bytes_moved = in_bytes + out_bytes;
                c.bwd_bytes_moved = 2 * out_bytes;
            }
            LayerKind::Softmax => {
                c.fwd_flops = 5 * out_elems;
                c.bwd_flops = 2 * out_elems;
                c.fwd_bytes_moved = in_bytes + out_bytes;
                c.bwd_bytes_moved = 2 * out_bytes;
            }
            LayerKind::Concat | LayerKind::Eltwise => {
                c.fwd_flops = out_elems;
                c.bwd_flops = out_elems;
                c.fwd_bytes_moved = in_bytes + out_bytes;
                c.bwd_bytes_moved = in_bytes + out_bytes;
            }
            LayerKind::Embedding { vocab, dim } => {
                // A gather: ~one read-modify-write per output element; the
                // backward scatter-adds into the (fp32) table gradient.
                c.fwd_flops = out_elems;
                c.bwd_flops = out_elems;
                let w = (*vocab as u64) * (*dim as u64) * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes + 2 * out_bytes;
                c.bwd_bytes_moved = 2 * out_bytes;
            }
            LayerKind::LayerNorm => {
                // Per-position mean/var + normalize, Welford-ish flop counts
                // mirroring BN; gamma/beta are 2 floats per channel.
                c.fwd_flops = out_elems * 4;
                c.bwd_flops = out_elems * 7;
                let w = out.c as u64 * 2 * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes * 2 + out_bytes;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes);
            }
            LayerKind::Attention { heads } => {
                // GEMM-dominated: four d×d projections (8·s·d² MACs·2) plus
                // scores and context (2·2·s²·d), per batch item.
                let n = out.n as u64;
                let d = out.c as u64;
                let s = (out.h * out.w) as u64;
                c.fwd_flops = n * (8 * s * d * d + 4 * s * s * d);
                c.bwd_flops = 2 * c.fwd_flops;
                let w = (4 * d * d + 4 * d) * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes + out_bytes + w;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes) + 2 * w;
                // Transient q/k/v plus the per-head score matrices, held at
                // activation precision — the seq²-dominant term that makes
                // long sequences expensive.
                c.fwd_workspace = n * (3 * s * d + *heads as u64 * s * s) * act.size_of();
            }
            LayerKind::Mlp { hidden } => {
                let n = out.n as u64;
                let d = out.c as u64;
                let s = (out.h * out.w) as u64;
                let hid = *hidden as u64;
                c.fwd_flops = 4 * n * s * d * hid;
                c.bwd_flops = 2 * c.fwd_flops;
                let w = (2 * hid * d + hid + d) * 4;
                c.weight_bytes = w;
                c.wgrad_bytes = w;
                c.fwd_bytes_moved = in_bytes + out_bytes + w;
                c.bwd_bytes_moved = 2 * (in_bytes + out_bytes) + 2 * w;
                // The hidden activation, transient at activation precision.
                c.fwd_workspace = n * s * hid * act.size_of();
            }
        }
        // All-reduce payload: one element per weight-gradient element,
        // shipped at the gradient dtype (fp32 master weights stay local).
        c.allreduce_bytes = c.weight_bytes / 4 * precision.gradients.size_of();
        c
    }

    /// Forward memory usage `l_f` of the paper: the tensors this layer's
    /// forward pass materializes (its output).
    pub fn l_f(&self) -> u64 {
        self.out_bytes
    }

    /// Backward memory usage `l_b`: the output gradient plus the transient
    /// weight gradient.
    pub fn l_b(&self) -> u64 {
        self.grad_bytes + self.wgrad_bytes
    }

    /// Total memory attributed to the layer, `l_i = l_f + l_b`, used by the
    /// paper's Σ-style formulas and Fig. 13's requirement computation.
    pub fn l_total(&self) -> u64 {
        self.l_f() + self.l_b()
    }

    /// Working set of the layer's *forward* computation: inputs + output
    /// (+ transient mask workspace).
    pub fn working_set_fwd(&self) -> u64 {
        self.in_bytes + self.out_bytes + self.fwd_workspace
    }

    /// Working set of the layer's *backward* computation: the output
    /// gradient `dY`, the input gradient `dX` being produced, the saved
    /// input `X` when the kernel is input-formulated, and the transient
    /// weight gradient. This is the quantity the paper's floor argument
    /// uses: "cuDNN needs at least stash the tensors in a layer to compute".
    pub fn working_set_bwd(&self) -> u64 {
        let x = if self.bwd_reads_input {
            self.in_bytes
        } else {
            0
        };
        // dY + dX + (X if read) + dW.
        self.grad_bytes + self.in_bytes + x + self.wgrad_bytes
    }

    /// The per-layer memory floor `l_i`: the larger of the two working sets.
    pub fn working_set(&self) -> u64 {
        self.working_set_fwd().max(self.working_set_bwd())
    }

    fn roofline(flops: u64, eff: f64, bytes: u64, spec: &DeviceSpec) -> SimTime {
        let ft = sn_sim::time::compute_time(flops, spec.peak_gflops * eff);
        let bt = sn_sim::time::transfer_time(bytes, spec.mem_bw_gbps);
        spec.kernel_launch + ft.max(bt)
    }

    /// Forward execution time on `spec`, with the selected convolution
    /// algorithm's speed factor (1.0 = the zero-workspace baseline; the
    /// runtime divides by a larger factor when a faster algorithm fits).
    #[inline]
    pub fn fwd_time(&self, kind: &LayerKind, spec: &DeviceSpec, algo_speedup: f64) -> SimTime {
        debug_assert!(algo_speedup >= 1.0);
        let flops = (self.fwd_flops as f64 / algo_speedup) as u64;
        Self::roofline(flops, efficiency(kind), self.fwd_bytes_moved, spec)
    }

    /// Backward execution time on `spec`.
    #[inline]
    pub fn bwd_time(&self, kind: &LayerKind, spec: &DeviceSpec, algo_speedup: f64) -> SimTime {
        debug_assert!(algo_speedup >= 1.0);
        let flops = (self.bwd_flops as f64 / algo_speedup) as u64;
        Self::roofline(flops, efficiency(kind), self.bwd_bytes_moved, spec)
    }
}

/// Costs for every layer of a network, plus aggregations.
#[derive(Debug, Clone)]
pub struct NetCost {
    per_layer: Vec<LayerCost>,
}

impl NetCost {
    /// fp32 costs — shorthand for [`NetCost::with_precision`] at
    /// [`Precision::fp32`].
    pub fn of(net: &Net) -> NetCost {
        Self::with_precision(net, Precision::fp32())
    }

    /// Costs for every layer at `precision`.
    pub fn with_precision(net: &Net, precision: Precision) -> NetCost {
        NetCost {
            per_layer: net
                .layers()
                .iter()
                .map(|l| LayerCost::with_precision(net, l, precision))
                .collect(),
        }
    }

    #[inline]
    pub fn layer(&self, id: LayerId) -> &LayerCost {
        &self.per_layer[id.0]
    }

    /// `Σ l_f` over all layers.
    pub fn sum_l_f(&self) -> u64 {
        self.per_layer.iter().map(|c| c.l_f()).sum()
    }

    /// `Σ l_b` over all layers.
    pub fn sum_l_b(&self) -> u64 {
        self.per_layer.iter().map(|c| c.l_b()).sum()
    }

    /// `l_peak = max_i(l_i)` where `l_i` is the layer's computation working
    /// set — the floor Cost-Aware Recomputation reaches (§3.4).
    pub fn l_peak(&self) -> u64 {
        self.per_layer
            .iter()
            .map(|c| c.working_set())
            .max()
            .unwrap_or(0)
    }

    /// The layer achieving `l_peak`.
    pub fn l_peak_layer(&self) -> LayerId {
        let peak = self.l_peak();
        LayerId(
            self.per_layer
                .iter()
                .position(|c| c.working_set() == peak)
                .unwrap_or(0),
        )
    }

    /// Total trainable parameter bytes (always fp32 master weights).
    pub fn total_weight_bytes(&self) -> u64 {
        self.per_layer.iter().map(|c| c.weight_bytes).sum()
    }

    /// Total data-parallel all-reduce payload at the gradient dtype. Equals
    /// [`NetCost::total_weight_bytes`] at fp32; half of it under bf16/f16.
    pub fn total_allreduce_bytes(&self) -> u64 {
        self.per_layer.iter().map(|c| c.allreduce_bytes).sum()
    }

    /// Fig. 8 aggregation: per layer-type `(fwd+bwd time share, memory
    /// share)`, returned as `(type, time_ns, l_f_bytes)` rows.
    pub fn breakdown_by_type(&self, net: &Net, spec: &DeviceSpec) -> Vec<(String, u64, u64)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for layer in net.layers() {
            let c = self.layer(layer.id);
            let t = c.fwd_time(&layer.kind, spec, 1.0).as_ns()
                + c.bwd_time(&layer.kind, spec, 1.0).as_ns();
            let e = map.entry(layer.kind.type_name()).or_insert((0, 0));
            e.0 += t;
            e.1 += c.l_f();
        }
        map.into_iter()
            .map(|(k, (t, m))| (k.to_string(), t, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_tensor::Shape4;

    fn alexnet_like() -> Net {
        // A miniature conv->relu->lrn->pool->fc->softmax chain, sized so the
        // convolution is genuinely compute-heavy (realistic proportions).
        let mut net = Net::new("mini", Shape4::new(64, 3, 32, 32));
        let d = net.data();
        let c = net.conv(d, 128, 5, 1, 2);
        let r = net.relu(c);
        let l = net.lrn(r);
        let p = net.max_pool(l, 2, 2, 0);
        let f = net.fc(p, 10);
        net.softmax(f);
        net
    }

    #[test]
    fn conv_flops_match_analytic_formula() {
        let net = alexnet_like();
        let conv = &net.layers()[1];
        let c = LayerCost::of(&net, conv);
        // 2 * N*K*OH*OW * C*R*S = 2 * 8*16*32*32 * 3*5*5
        assert_eq!(c.fwd_flops, 2 * 64 * 128 * 32 * 32 * 3 * 5 * 5);
        assert_eq!(c.bwd_flops, 2 * c.fwd_flops);
    }

    #[test]
    fn weight_bytes_cover_filters_and_bias() {
        let net = alexnet_like();
        let conv = &net.layers()[1];
        let c = LayerCost::of(&net, conv);
        assert_eq!(c.weight_bytes, (128 * 3 * 5 * 5 + 128) * 4);
    }

    #[test]
    fn elementwise_layers_are_bandwidth_bound() {
        let net = alexnet_like();
        let spec = DeviceSpec::k40c();
        let relu = &net.layers()[2];
        let c = LayerCost::of(&net, relu);
        let t = c.fwd_time(&relu.kind, &spec, 1.0);
        // Pure bandwidth bound: bytes/bw plus launch overhead.
        let expect =
            spec.kernel_launch + sn_sim::time::transfer_time(c.fwd_bytes_moved, spec.mem_bw_gbps);
        assert_eq!(t, expect);
    }

    #[test]
    fn conv_dominates_time_activations_dominate_memory() {
        let net = alexnet_like();
        let cost = NetCost::of(&net);
        let spec = DeviceSpec::k40c();
        let rows = cost.breakdown_by_type(&net, &spec);
        let total_t: u64 = rows.iter().map(|r| r.1).sum();
        let total_m: u64 = rows.iter().map(|r| r.2).sum();
        let conv_t = rows.iter().find(|r| r.0 == "CONV").unwrap().1;
        let cheap_m: u64 = rows
            .iter()
            .filter(|r| ["ACT", "LRN", "POOL"].contains(&r.0.as_str()))
            .map(|r| r.2)
            .sum();
        assert!(
            conv_t * 2 > total_t,
            "CONV should be >50% of time: {conv_t}/{total_t}"
        );
        assert!(
            cheap_m * 2 > total_m,
            "cheap layers should be >50% of memory: {cheap_m}/{total_m}"
        );
    }

    #[test]
    fn l_peak_is_max_layer_working_set() {
        let net = alexnet_like();
        let cost = NetCost::of(&net);
        let manual = net
            .layers()
            .iter()
            .map(|l| cost.layer(l.id).working_set())
            .max()
            .unwrap();
        assert_eq!(cost.l_peak(), manual);
        // The floor sits below the whole-network sum but above any single
        // output tensor.
        assert!(cost.l_peak() <= cost.sum_l_f() + cost.sum_l_b());
        let max_out = net
            .layers()
            .iter()
            .map(|l| cost.layer(l.id).l_f())
            .max()
            .unwrap();
        assert!(cost.l_peak() >= max_out);
    }

    #[test]
    fn algo_speedup_reduces_conv_time() {
        let net = alexnet_like();
        let conv = &net.layers()[1];
        let c = LayerCost::of(&net, conv);
        let spec = DeviceSpec::k40c();
        let slow = c.fwd_time(&conv.kind, &spec, 1.0);
        let fast = c.fwd_time(&conv.kind, &spec, 2.5);
        assert!(fast < slow);
    }

    #[test]
    fn data_layer_has_no_gradient() {
        let net = alexnet_like();
        let cost = NetCost::of(&net);
        assert_eq!(cost.layer(LayerId(0)).grad_bytes, 0);
    }

    fn tiny_gpt() -> Net {
        let mut net = Net::new("tiny-gpt", Shape4::new(2, 1, 8, 1));
        let d = net.data();
        let e = net.embedding(d, 64, 16);
        let ln = net.layernorm(e);
        let a = net.attention(ln, 4);
        let m = net.mlp(a, 32);
        net.softmax(m);
        net
    }

    #[test]
    fn mixed_precision_halves_activations_keeps_weights_fp32() {
        use crate::precision::Precision;
        let net = tiny_gpt();
        let fp32 = NetCost::with_precision(&net, Precision::fp32());
        let bf16 = NetCost::with_precision(&net, Precision::bf16_mixed());
        for l in net.layers() {
            let a = fp32.layer(l.id);
            let b = bf16.layer(l.id);
            assert_eq!(a.out_bytes, 2 * b.out_bytes, "{}: out halves", l.name);
            assert_eq!(a.grad_bytes, 2 * b.grad_bytes, "{}: grad halves", l.name);
            // Master weights and their gradients stay fp32.
            assert_eq!(a.weight_bytes, b.weight_bytes, "{}: weights fixed", l.name);
            assert_eq!(a.wgrad_bytes, b.wgrad_bytes, "{}: wgrads fixed", l.name);
            // All-reduce payload ships at the gradient dtype.
            assert_eq!(
                b.allreduce_bytes,
                a.weight_bytes / 2,
                "{}: wire bytes halve",
                l.name
            );
        }
        assert_eq!(fp32.total_allreduce_bytes(), fp32.total_weight_bytes());
        assert_eq!(bf16.total_allreduce_bytes() * 2, bf16.total_weight_bytes());
        // `of` stays the fp32 shorthand.
        assert_eq!(
            NetCost::of(&net).total_weight_bytes(),
            fp32.total_weight_bytes()
        );
    }

    #[test]
    fn attention_and_mlp_are_gemm_dominated() {
        let net = tiny_gpt();
        let cost = NetCost::of(&net);
        let spec = DeviceSpec::k40c();
        let attn = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Attention { .. }))
            .unwrap();
        let mlp = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::Mlp { .. }))
            .unwrap();
        // Analytic flop counts: n(8sd² + 4s²d) and 4nsd·hidden.
        assert_eq!(
            cost.layer(attn.id).fwd_flops,
            2 * (8 * 8 * 16 * 16 + 4 * 8 * 8 * 16)
        );
        assert_eq!(cost.layer(mlp.id).fwd_flops, 4 * 2 * 8 * 16 * 32);
        // The GEMM blocks dominate the cheap layers' time.
        let ln = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::LayerNorm))
            .unwrap();
        assert!(
            cost.layer(attn.id).fwd_time(&attn.kind, &spec, 1.0)
                >= cost.layer(ln.id).fwd_time(&ln.kind, &spec, 1.0)
        );
    }
}
