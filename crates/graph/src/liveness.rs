//! Liveness analysis (§3.2): determine, for every tensor, the step at which
//! it is created and the step after which no subsequent computation needs it,
//! so different tensors can reuse the same physical memory at different time
//! partitions.
//!
//! Two implementations are provided:
//!
//! * the production path computes each tensor's last consumer directly from
//!   the dependency lists (O(E) over graph edges — necessary for the
//!   10⁴-layer ResNets of Table 4);
//! * [`LivenessPlan::in_out_sets`] materializes the paper's explicit per-step
//!   `in`/`out` sets (the O(N²) construction narrated in §3.2 and Fig. 5),
//!   used by tests to cross-validate the fast path.
//!
//! Policy knobs ([`LivenessOptions`]) express the schedules of the baseline
//! and of the emulated frameworks: disabling liveness reproduces the naive
//! `Σ l_f + Σ l_b` allocator, `keep_all_forward` reproduces Caffe/Torch's
//! resident forward tensors, `recompute_non_checkpoints` drops backward
//! dependencies on cheap layers (they will be rebuilt), and `inplace_act`
//! models Torch-style in-place ReLU/Dropout.

use std::collections::HashSet;

use crate::layer::{LayerId, LayerKind};
use crate::net::Net;
use crate::route::Route;

/// Index into [`LivenessPlan::tensors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub usize);

/// What a tensor is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorRole {
    /// A layer's forward output.
    FwdOut,
    /// The gradient w.r.t. a layer's output (`dY`).
    Grad,
}

/// Scheduling metadata for one tensor.
#[derive(Debug, Clone)]
pub struct TensorMeta {
    pub id: TensorId,
    /// The layer this tensor belongs to (producer for `FwdOut`, the layer
    /// whose output the gradient refers to for `Grad`).
    pub layer: LayerId,
    pub role: TensorRole,
    pub bytes: u64,
    /// Step at which the tensor is materialized.
    pub created_step: usize,
    /// Last step that reads the tensor under the active policy; freed after.
    pub last_use_step: usize,
    /// Last *forward* step that reads the tensor (offload may release the
    /// device copy only after all forward consumers ran).
    pub fwd_last_use: usize,
    /// Last *backward* step that would read the tensor if recomputation
    /// materializes it (used by the recompute engine's free decisions).
    pub bwd_last_use: Option<usize>,
    /// Checkpoint flag of the owning layer (for `FwdOut`).
    pub is_checkpoint: bool,
    /// Offload candidate flag (CONV/DATA outputs).
    pub offloadable: bool,
}

/// Policy switches for the analysis. `Eq + Hash` so the options can key
/// the planner's shared-analysis cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LivenessOptions {
    /// Master switch: off = the naive baseline (nothing freed mid-iteration).
    pub enabled: bool,
    /// Drop backward dependencies on non-checkpoint outputs — they will be
    /// recomputed (§3.4).
    pub recompute_non_checkpoints: bool,
    /// Keep every forward output resident to the end of the iteration
    /// (Caffe/Torch-style static allocation).
    pub keep_all_forward: bool,
    /// ReLU/Dropout run in place (their outputs alias their inputs).
    pub inplace_act: bool,
    /// Element precision of activations/gradients — sizes every registered
    /// tensor (and, being part of the options, keys the analysis cache so
    /// fp32 and mixed-precision analyses never alias).
    pub precision: crate::precision::Precision,
}

impl Default for LivenessOptions {
    fn default() -> Self {
        LivenessOptions {
            enabled: true,
            recompute_non_checkpoints: false,
            keep_all_forward: false,
            inplace_act: false,
            precision: crate::precision::Precision::fp32(),
        }
    }
}

/// Step-indexed tensor lists in one flat allocation (CSR layout: an offset
/// table over a shared item vector). The planner reads these lists on every
/// step of every compile; packing them flat replaces `n_steps` little heap
/// vectors with two, which is a measurable share of analysis time on deep
/// nets. `lists[s]` indexes to the step's slice.
#[derive(Debug, Clone)]
pub struct StepLists {
    offsets: Vec<u32>,
    items: Vec<TensorId>,
}

impl StepLists {
    /// Build from a per-step visitor: `visit` must call its callback once
    /// per `(step, tensor)` pair, in the desired within-step order, and
    /// behave identically on both invocations (count, then fill).
    fn build(n_steps: usize, mut visit: impl FnMut(&mut dyn FnMut(usize, TensorId))) -> StepLists {
        let mut counts = vec![0u32; n_steps + 1];
        visit(&mut |s, _| counts[s + 1] += 1);
        for i in 0..n_steps {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut items = vec![TensorId(0); *offsets.last().unwrap() as usize];
        visit(&mut |s, t| {
            items[cursor[s] as usize] = t;
            cursor[s] += 1;
        });
        StepLists { offsets, items }
    }

    /// Sort each step's list by tensor id and drop duplicates, compacting
    /// the shared item vector in place.
    fn sort_dedup(&mut self) {
        let n_steps = self.offsets.len() - 1;
        let mut write = 0usize;
        let old_offsets = std::mem::take(&mut self.offsets);
        let mut offsets = Vec::with_capacity(n_steps + 1);
        offsets.push(0u32);
        for s in 0..n_steps {
            let (a, b) = (old_offsets[s] as usize, old_offsets[s + 1] as usize);
            self.items[a..b].sort_unstable_by_key(|t| t.0);
            let mut prev: Option<TensorId> = None;
            for i in a..b {
                let t = self.items[i];
                if prev != Some(t) {
                    self.items[write] = t;
                    write += 1;
                    prev = Some(t);
                }
            }
            offsets.push(write as u32);
        }
        self.items.truncate(write);
        self.offsets = offsets;
    }

    pub fn n_steps(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterate the per-step slices in step order.
    pub fn iter(&self) -> impl Iterator<Item = &[TensorId]> {
        (0..self.n_steps()).map(move |s| &self[s])
    }
}

impl std::ops::Index<usize> for StepLists {
    type Output = [TensorId];

    #[inline]
    fn index(&self, s: usize) -> &[TensorId] {
        &self.items[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }
}

/// The computed liveness schedule.
#[derive(Debug, Clone)]
pub struct LivenessPlan {
    pub tensors: Vec<TensorMeta>,
    /// Layer → its forward-output tensor.
    pub fwd_out: Vec<TensorId>,
    /// Layer → gradient tensor of its output (None for DATA).
    pub grad_of: Vec<Option<TensorId>>,
    /// Step → tensors materialized at that step.
    pub created_at: StepLists,
    /// Step → tensors whose last use is that step (freeable afterwards).
    pub freed_after: StepLists,
    /// Step → tensors the step's computation *reads* (its output excluded).
    pub step_inputs: StepLists,
    pub n_steps: usize,
    pub options: LivenessOptions,
}

impl LivenessPlan {
    /// Run the analysis.
    pub fn analyze(net: &Net, route: &Route, options: LivenessOptions) -> LivenessPlan {
        let n = net.len();
        let n_steps = route.total_steps();
        let mut tensors: Vec<TensorMeta> = Vec::with_capacity(2 * n);
        let mut fwd_out: Vec<TensorId> = Vec::with_capacity(n);
        let mut grad_of: Vec<Option<TensorId>> = vec![None; n];

        // --- Create forward-output tensors -------------------------------
        for layer in net.layers() {
            let id = TensorId(tensors.len());
            fwd_out.push(id);
            tensors.push(TensorMeta {
                id,
                layer: layer.id,
                role: TensorRole::FwdOut,
                bytes: layer.out_shape.bytes_of(options.precision.activations),
                created_step: route.fwd_step(layer.id),
                last_use_step: route.fwd_step(layer.id),
                fwd_last_use: route.fwd_step(layer.id),
                bwd_last_use: None,
                is_checkpoint: layer.kind.is_checkpoint(),
                offloadable: layer.kind.is_offload_candidate(),
            });
        }
        debug_assert_eq!(fwd_out.len(), n);

        // In-place aliasing: an Act/Dropout output shares its input's
        // storage. We zero the alias's bytes and redirect its consumers to
        // the alias target, so the target's lifetime covers them.
        let mut alias_target: Vec<usize> = (0..n).collect();
        if options.inplace_act {
            for id in &route.fwd {
                let layer = net.layer(*id);
                if matches!(layer.kind, LayerKind::Act | LayerKind::Dropout { .. }) {
                    let p = layer.prevs[0].0;
                    alias_target[id.0] = alias_target[p];
                    tensors[fwd_out[id.0].0].bytes = 0;
                }
            }
        }
        let resolve = |l: usize| fwd_out[alias_target[l]];

        // --- Gradient tensors ---------------------------------------------
        // Inference routes carry no gradients at all: the whole section is
        // skipped and every `grad_of` entry stays `None`.
        for layer in net.layers() {
            let has_grad = route.has_backward() && !matches!(layer.kind, LayerKind::Data { .. });
            if !has_grad {
                continue;
            }
            // dY_j is first written by the backward of the route-latest
            // consumer (the earliest backward step among `nexts`); a layer
            // with no consumers (SOFTMAX) seeds its own gradient.
            let created = layer
                .nexts
                .iter()
                .map(|k| route.bwd_step(*k))
                .min()
                .unwrap_or_else(|| route.bwd_step(layer.id));
            let id = TensorId(tensors.len());
            grad_of[layer.id.0] = Some(id);
            tensors.push(TensorMeta {
                id,
                layer: layer.id,
                role: TensorRole::Grad,
                bytes: layer.out_shape.bytes_of(options.precision.gradients),
                created_step: created,
                last_use_step: route.bwd_step(layer.id),
                fwd_last_use: 0,
                bwd_last_use: None,
                is_checkpoint: false,
                offloadable: false,
            });
        }

        // --- Consumer analysis for forward outputs ------------------------
        // Forward consumers: the forward steps of `nexts`.
        // Backward consumers: own backward if `bwd_needs_output`, plus each
        // consumer k's backward if `k.bwd_needs_input`.
        for layer in net.layers() {
            let tid = resolve(layer.id.0);
            let mut fwd_last = tensors[tid.0].last_use_step.max(route.fwd_step(layer.id));
            let mut bwd_last: Option<usize> = None;
            for k in &layer.nexts {
                fwd_last = fwd_last.max(route.fwd_step(*k));
                if route.has_backward() && net.layer(*k).kind.bwd_needs_input() {
                    bwd_last = Some(bwd_last.unwrap_or(0).max(route.bwd_step(*k)));
                }
            }
            if route.has_backward() && layer.kind.bwd_needs_output() {
                bwd_last = Some(bwd_last.unwrap_or(0).max(route.bwd_step(layer.id)));
            }

            let meta = &mut tensors[tid.0];
            meta.fwd_last_use = meta.fwd_last_use.max(fwd_last);
            meta.bwd_last_use = match (meta.bwd_last_use, bwd_last) {
                (a, None) => a,
                (None, b) => b,
                (Some(a), Some(b)) => Some(a.max(b)),
            };
            let drop_bwd = options.recompute_non_checkpoints && !meta.is_checkpoint;
            let mut last = fwd_last;
            if !drop_bwd {
                if let Some(b) = meta.bwd_last_use {
                    last = last.max(b);
                }
            }
            meta.last_use_step = meta.last_use_step.max(last);
        }

        // Policy overrides.
        for t in tensors.iter_mut() {
            match t.role {
                TensorRole::FwdOut => {
                    if !options.enabled || options.keep_all_forward {
                        t.last_use_step = n_steps - 1;
                    }
                }
                TensorRole::Grad => {
                    if !options.enabled {
                        t.last_use_step = n_steps - 1;
                    }
                }
            }
            debug_assert!(t.last_use_step >= t.created_step);
        }

        // --- Per-step schedules -------------------------------------------
        let created_at = StepLists::build(n_steps, |put| {
            for t in &tensors {
                if t.bytes == 0 {
                    continue; // aliases occupy no storage of their own
                }
                put(t.created_step, t.id);
            }
        });
        let freed_after = StepLists::build(n_steps, |put| {
            for t in &tensors {
                if t.bytes == 0 {
                    continue;
                }
                put(t.last_use_step, t.id);
            }
        });

        // --- Step input lists (what each computation reads) ----------------
        let mut step_inputs = StepLists::build(n_steps, |put| {
            for layer in net.layers() {
                let fs = route.fwd_step(layer.id);
                for p in &layer.prevs {
                    put(fs, resolve(p.0));
                }
                if !route.has_backward() {
                    continue; // inference: forward reads only
                }
                let bs = route.bwd_step(layer.id);
                if let Some(g) = grad_of[layer.id.0] {
                    // Not an input for its creating step (SOFTMAX seeds it),
                    // but every other layer reads its accumulated output
                    // gradient.
                    if tensors[g.0].created_step < bs {
                        put(bs, g);
                    }
                }
                if layer.kind.bwd_needs_output() {
                    put(bs, resolve(layer.id.0));
                }
                if layer.kind.bwd_needs_input() {
                    for p in &layer.prevs {
                        put(bs, resolve(p.0));
                    }
                }
                // Backward also reads the grads of prevs it accumulates
                // into, when they already exist (created by an earlier
                // backward step).
                for p in &layer.prevs {
                    if let Some(g) = grad_of[p.0] {
                        if tensors[g.0].created_step < bs {
                            put(bs, g);
                        }
                    }
                }
            }
        });
        step_inputs.sort_dedup();

        LivenessPlan {
            tensors,
            fwd_out,
            grad_of,
            created_at,
            freed_after,
            step_inputs,
            n_steps,
            options,
        }
    }

    /// Analytic peak resident bytes: walk the schedule accumulating live
    /// bytes, adding `transient(step)` (workspaces, weight gradients) and a
    /// constant `always_resident` (weights). Returns `(peak, step_of_peak)`.
    pub fn peak_resident<F: Fn(usize) -> u64>(
        &self,
        always_resident: u64,
        transient: F,
    ) -> (u64, usize) {
        let mut live = 0u64;
        let mut peak = 0u64;
        let mut peak_step = 0usize;
        for s in 0..self.n_steps {
            for t in &self.created_at[s] {
                live += self.tensors[t.0].bytes;
            }
            let resident = always_resident + live + transient(s);
            if resident > peak {
                peak = resident;
                peak_step = s;
            }
            for t in &self.freed_after[s] {
                live -= self.tensors[t.0].bytes;
            }
        }
        (peak, peak_step)
    }

    /// Count of live tensors during each step (the orange series of Fig. 10).
    pub fn live_counts(&self) -> Vec<usize> {
        let mut live = 0usize;
        let mut out = Vec::with_capacity(self.n_steps);
        for s in 0..self.n_steps {
            live += self.created_at[s].len();
            out.push(live);
            live -= self.freed_after[s].len();
        }
        out
    }

    /// The paper-literal O(N²) in/out-set construction (Fig. 5): for every
    /// step, the set of live tensors before (`in`) and after (`out`) the
    /// step's computation. Exponential in nothing, quadratic in steps — use
    /// on small networks (tests) only.
    pub fn in_out_sets(&self) -> Vec<(HashSet<TensorId>, HashSet<TensorId>)> {
        let mut sets = Vec::with_capacity(self.n_steps);
        let mut live: HashSet<TensorId> = HashSet::new();
        for s in 0..self.n_steps {
            let in_set = live.clone();
            for t in &self.created_at[s] {
                live.insert(*t);
            }
            // Eliminate tensors no subsequent step needs: scan the future
            // (this is the N(N−1)/2 check of §3.2).
            let mut out_set = live.clone();
            for t in live.clone() {
                let needed_later = (s + 1..self.n_steps).any(|fut| {
                    self.step_inputs[fut].contains(&t) || self.created_at[fut].contains(&t)
                });
                if !needed_later {
                    out_set.remove(&t);
                }
            }
            live = out_set.clone();
            sets.push((in_set, out_set));
        }
        sets
    }

    /// Total bytes of tensors live during step `s` (inclusive of creations).
    pub fn live_bytes_at(&self, s: usize) -> u64 {
        let mut live = 0u64;
        for step in 0..=s {
            for t in &self.created_at[step] {
                live += self.tensors[t.0].bytes;
            }
            if step < s {
                for t in &self.freed_after[step] {
                    live -= self.tensors[t.0].bytes;
                }
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_tensor::Shape4;

    /// CONV -> ACT -> POOL -> FC -> SOFTMAX on top of DATA.
    fn small_net() -> (Net, Route) {
        let mut net = Net::new("small", Shape4::new(2, 3, 8, 8));
        let d = net.data();
        let c = net.conv(d, 4, 3, 1, 1);
        let a = net.relu(c);
        let p = net.max_pool(a, 2, 2, 0);
        let f = net.fc(p, 10);
        net.softmax(f);
        let route = Route::construct(&net);
        (net, route)
    }

    #[test]
    fn forward_tensor_lifetimes_extend_to_backward_consumers() {
        let (net, route) = small_net();
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        // CONV output (layer 1) is read by ACT fwd (step 2) and by ACT's
        // backward (input-formulated ReLU), which is the later step.
        let conv_out = plan.fwd_out[1];
        assert_eq!(
            plan.tensors[conv_out.0].last_use_step,
            route.bwd_step(crate::layer::LayerId(2))
        );
        // ACT output: read by POOL fwd (3) and by POOL's backward (max-pool
        // re-derives its routing from the input).
        let act_out = plan.fwd_out[2];
        let expect = route.bwd_step(crate::layer::LayerId(3));
        assert_eq!(plan.tensors[act_out.0].last_use_step, expect);
    }

    #[test]
    fn baseline_keeps_everything_to_the_end() {
        let (net, route) = small_net();
        let opts = LivenessOptions {
            enabled: false,
            ..Default::default()
        };
        let plan = LivenessPlan::analyze(&net, &route, opts);
        let last = plan.n_steps - 1;
        for t in &plan.tensors {
            assert_eq!(t.last_use_step, last);
        }
        // Baseline peak equals sum of all tensor bytes.
        let total: u64 = plan.tensors.iter().map(|t| t.bytes).sum();
        let (peak, _) = plan.peak_resident(0, |_| 0);
        assert_eq!(peak, total);
    }

    #[test]
    fn liveness_strictly_improves_on_baseline() {
        let (net, route) = small_net();
        let base = LivenessPlan::analyze(
            &net,
            &route,
            LivenessOptions {
                enabled: false,
                ..Default::default()
            },
        );
        let live = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        let (pb, _) = base.peak_resident(0, |_| 0);
        let (pl, _) = live.peak_resident(0, |_| 0);
        assert!(pl < pb, "liveness {pl} must beat baseline {pb}");
    }

    #[test]
    fn recompute_drops_backward_deps_of_non_checkpoints() {
        let (net, route) = small_net();
        let opts = LivenessOptions {
            recompute_non_checkpoints: true,
            ..Default::default()
        };
        let plan = LivenessPlan::analyze(&net, &route, opts);
        // ACT output (non-checkpoint): last use becomes its last *forward*
        // consumer (POOL fwd at step 3).
        let act_out = plan.fwd_out[2];
        assert_eq!(plan.tensors[act_out.0].last_use_step, 3);
        // But its backward need is remembered for the recompute engine.
        assert!(plan.tensors[act_out.0].bwd_last_use.is_some());
        // CONV output (checkpoint) keeps its backward lifetime: ACT's
        // backward still reads it.
        let conv_out = plan.fwd_out[1];
        assert_eq!(
            plan.tensors[conv_out.0].last_use_step,
            route.bwd_step(LayerId(2))
        );
    }

    #[test]
    fn gradients_live_from_consumer_backward_to_own_backward() {
        let (net, route) = small_net();
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        // Grad of CONV output: created by ACT's backward, consumed by CONV's.
        let g = plan.grad_of[1].unwrap();
        assert_eq!(plan.tensors[g.0].created_step, route.bwd_step(LayerId(2)));
        assert_eq!(plan.tensors[g.0].last_use_step, route.bwd_step(LayerId(1)));
        // DATA has no gradient.
        assert!(plan.grad_of[0].is_none());
    }

    #[test]
    fn in_out_sets_match_fast_path() {
        let (net, route) = small_net();
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        let sets = plan.in_out_sets();
        assert_eq!(sets.len(), plan.n_steps);
        // Reconstruct live counts from the literal sets and compare with the
        // fast path: live-during-step = |in ∪ created|.
        let fast = plan.live_counts();
        for (s, (in_set, _)) in sets.iter().enumerate() {
            let mut during = in_set.clone();
            for t in &plan.created_at[s] {
                during.insert(*t);
            }
            assert_eq!(during.len(), fast[s], "step {s}");
        }
        // Initial in-set and final out-set are empty (Fig. 5).
        assert!(sets[0].0.is_empty());
        assert!(sets[plan.n_steps - 1].1.is_empty());
    }

    #[test]
    fn inplace_act_zeroes_alias_bytes_and_extends_target() {
        let (net, route) = small_net();
        let opts = LivenessOptions {
            inplace_act: true,
            ..Default::default()
        };
        let plan = LivenessPlan::analyze(&net, &route, opts);
        let act_out = plan.fwd_out[2];
        assert_eq!(plan.tensors[act_out.0].bytes, 0);
        // Conv output (the alias target) now carries ACT's lifetime: ACT bwd
        // reads "its output" which is physically the conv buffer, and POOL
        // bwd reads its input likewise.
        let conv_out = plan.fwd_out[1];
        assert_eq!(
            plan.tensors[conv_out.0].last_use_step,
            route.bwd_step(LayerId(2))
        );
        // In-place execution never worsens the peak, and strictly reduces
        // the total bytes the schedule materializes.
        let (inplace_peak, _) = plan.peak_resident(0, |_| 0);
        let normal = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        let (normal_peak, _) = normal.peak_resident(0, |_| 0);
        assert!(inplace_peak <= normal_peak);
        let total = |p: &LivenessPlan| p.tensors.iter().map(|t| t.bytes).sum::<u64>();
        assert!(total(&plan) < total(&normal));
    }

    #[test]
    fn keep_all_forward_matches_caffe_style() {
        let (net, route) = small_net();
        let opts = LivenessOptions {
            keep_all_forward: true,
            ..Default::default()
        };
        let plan = LivenessPlan::analyze(&net, &route, opts);
        for layer in net.layers() {
            let t = &plan.tensors[plan.fwd_out[layer.id.0].0];
            assert_eq!(t.last_use_step, plan.n_steps - 1);
        }
        // Gradients still die early.
        let g = plan.grad_of[1].unwrap();
        assert!(plan.tensors[g.0].last_use_step < plan.n_steps - 1);
    }

    #[test]
    fn step_inputs_are_consistent_with_dependencies() {
        let (net, route) = small_net();
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        // FC fwd (step 4) reads POOL output.
        let pool_out = plan.fwd_out[3];
        assert!(plan.step_inputs[4].contains(&pool_out));
        // CONV bwd reads: grad of conv out, data out (bwd needs input).
        let bs = route.bwd_step(LayerId(1));
        let g = plan.grad_of[1].unwrap();
        let data_out = plan.fwd_out[0];
        assert!(plan.step_inputs[bs].contains(&g));
        assert!(plan.step_inputs[bs].contains(&data_out));
        // No step reads a tensor before it exists.
        for (s, inputs) in plan.step_inputs.iter().enumerate() {
            for t in inputs {
                assert!(
                    plan.tensors[t.0].created_step <= s,
                    "step {s} reads tensor created at {}",
                    plan.tensors[t.0].created_step
                );
            }
        }
    }

    #[test]
    fn inference_liveness_has_no_grads_and_frees_at_last_forward_reader() {
        let (net, _) = small_net();
        let route = Route::construct_inference(&net);
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        assert_eq!(plan.n_steps, net.len());
        // No gradient tensors at all.
        assert!(plan.grad_of.iter().all(|g| g.is_none()));
        assert!(plan
            .tensors
            .iter()
            .all(|t| t.role == crate::liveness::TensorRole::FwdOut));
        // Every output dies at its last forward consumer (softmax at its own
        // step — nothing reads it).
        let conv_out = plan.fwd_out[1];
        assert_eq!(plan.tensors[conv_out.0].last_use_step, 2); // ACT fwd
        let sm_out = plan.fwd_out[5];
        assert_eq!(plan.tensors[sm_out.0].last_use_step, 5);
        // The forward-only peak undercuts the training peak.
        let train =
            LivenessPlan::analyze(&net, &Route::construct(&net), LivenessOptions::default());
        let (pi, _) = plan.peak_resident(0, |_| 0);
        let (pt, _) = train.peak_resident(0, |_| 0);
        assert!(pi < pt, "inference {pi} must undercut training {pt}");
        // All steps resolve; the final out-set is empty.
        let sets = plan.in_out_sets();
        assert!(sets[plan.n_steps - 1].1.is_empty());
    }

    #[test]
    fn live_bytes_at_agrees_with_peak_walk() {
        let (net, route) = small_net();
        let plan = LivenessPlan::analyze(&net, &route, LivenessOptions::default());
        let (peak, step) = plan.peak_resident(0, |_| 0);
        assert_eq!(plan.live_bytes_at(step), peak);
    }
}
