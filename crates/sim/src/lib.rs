//! # sn-sim — discrete-event simulated GPU substrate
//!
//! SuperNeurons (PPoPP'18) is a *memory scheduling runtime*: its behaviour is
//! determined by byte-accurate allocation bookkeeping and by how data
//! transfers overlap with kernel execution, not by actual arithmetic on a
//! physical GPU. This crate provides the substrate the runtime schedules on:
//!
//! * a **virtual clock** ([`SimTime`]) in integer nanoseconds, deterministic
//!   across runs;
//! * a **multi-stream timeline** ([`Timeline`]) mirroring a CUDA device:
//!   per-device compute, host-to-device and device-to-host streams (plus any
//!   extra via [`Timeline::add_stream`]), each serializing its own operations
//!   while running concurrently with the others, with [`Event`]-based
//!   cross-stream waits and per-stream busy timelines from which
//!   [`Timeline::overlap`] derives how much DMA time was hidden under
//!   kernels — exactly the overlap structure the paper's prefetch/offload
//!   design exploits;
//! * [`DeviceSpec`] describing a concrete card (DRAM capacity, arithmetic
//!   throughput, memory and PCIe bandwidths, allocation latencies) with
//!   presets for the NVIDIA K40c and TITAN Xp used in the paper;
//! * the [`DeviceAllocator`] trait plus [`CudaAllocator`], a latency-modelled
//!   stand-in for `cudaMalloc`/`cudaFree` that the heap pool of `sn-mempool`
//!   is benchmarked against (Table 2).
//!
//! Everything here is exact-integer and single-threaded on purpose: the
//! simulation must be reproducible so that the experiment harness regenerates
//! identical tables on every run.

pub mod alloc;
pub mod engine;
pub mod group;
pub mod spec;
pub mod time;
pub mod trace;

pub use alloc::{AllocError, AllocGrant, AllocId, CudaAllocator, DeviceAllocator};
pub use engine::{
    Dma, EngineKind, Event, OverlapStats, SpanLabel, StreamId, Timeline, TimelineStats,
    TransferDirection,
};
pub use group::{group_collective, group_now, group_sync, DeviceGroup, GroupEngine};
pub use sn_telemetry::{SpanId, TraceSink};
pub use spec::DeviceSpec;
pub use time::SimTime;
pub use trace::{StepRecord, StepTrace};
