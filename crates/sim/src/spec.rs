//! Device descriptions. A [`DeviceSpec`] carries every hardware parameter the
//! simulation depends on. Two presets mirror the cards used in the paper's
//! evaluation: the 12 GB K40c (Tables 4/5) and the 12 GB TITAN Xp (Fig. 14).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

pub const KB: u64 = 1024;
pub const MB: u64 = 1024 * KB;
pub const GB: u64 = 1024 * MB;

/// Static description of the simulated accelerator and its host link.
///
/// Bandwidths are decimal GB/s (the unit vendors quote and the paper uses:
/// "a practical speed of 8 GB/s" for pinned PCIe transfers).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable card name, reported by the experiment harness.
    pub name: String,
    /// Device DRAM capacity in bytes. The runtime can never exceed this.
    pub dram_bytes: u64,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Device memory bandwidth in GB/s — bounds bandwidth-bound layers
    /// (activations, pooling, batch-norm).
    pub mem_bw_gbps: f64,
    /// Pinned host→device PCIe bandwidth, GB/s.
    pub pcie_h2d_gbps: f64,
    /// Pinned device→host PCIe bandwidth, GB/s.
    pub pcie_d2h_gbps: f64,
    /// Multiplier applied to PCIe bandwidth when the host buffer is pageable
    /// (not pinned). The paper notes unpinned transfers compromise "at least
    /// 50% of communication speed" — hence 0.5.
    pub unpinned_factor: f64,
    /// Fixed cost of a `cudaMalloc` call.
    pub malloc_base: SimTime,
    /// Additional `cudaMalloc` cost per MiB requested (zeroing + page table
    /// work grows with size).
    pub malloc_per_mib: SimTime,
    /// Fixed cost of a `cudaFree` call (synchronizes the device).
    pub free_base: SimTime,
    /// Fixed kernel launch overhead added to every compute operation.
    pub kernel_launch: SimTime,
}

impl DeviceSpec {
    /// NVIDIA Tesla K40c: 12 GB GDDR5, 4.29 TFLOP/s FP32, 288 GB/s.
    ///
    /// The malloc/free latencies are calibrated so that a ResNet-50 training
    /// iteration run with raw `cudaMalloc`/`cudaFree` wastes roughly a third
    /// of its time in allocation (the paper measured 36.28%, §3.2.1), and so
    /// the Table 2 pool speedups land in the paper's 1.1×–1.8× band.
    pub fn k40c() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla K40c".into(),
            dram_bytes: 12 * GB,
            peak_gflops: 4290.0,
            mem_bw_gbps: 288.0,
            pcie_h2d_gbps: 8.0,
            pcie_d2h_gbps: 8.0,
            unpinned_factor: 0.5,
            malloc_base: SimTime::from_us(30),
            malloc_per_mib: SimTime::from_us(1),
            free_base: SimTime::from_us(25),
            kernel_launch: SimTime::from_us(5),
        }
    }

    /// NVIDIA TITAN Xp: 12 GB GDDR5X, 12.15 TFLOP/s FP32, 547 GB/s.
    pub fn titan_xp() -> Self {
        DeviceSpec {
            name: "NVIDIA TITAN Xp".into(),
            dram_bytes: 12 * GB,
            peak_gflops: 12150.0,
            mem_bw_gbps: 547.0,
            pcie_h2d_gbps: 8.0,
            pcie_d2h_gbps: 8.0,
            unpinned_factor: 0.5,
            malloc_base: SimTime::from_us(30),
            malloc_per_mib: SimTime::from_us(1),
            free_base: SimTime::from_us(25),
            kernel_launch: SimTime::from_us(5),
        }
    }

    /// A copy of this spec with a different DRAM capacity — used by the
    /// workspace experiments that constrain the memory pool to 3 GB / 5 GB
    /// (Fig. 12) and by tests that shrink the device to force eviction.
    pub fn with_dram(mut self, bytes: u64) -> Self {
        self.dram_bytes = bytes;
        self
    }

    /// Effective PCIe bandwidth for a transfer, honouring pinned/pageable.
    pub fn pcie_gbps(&self, h2d: bool, pinned: bool) -> f64 {
        let base = if h2d {
            self.pcie_h2d_gbps
        } else {
            self.pcie_d2h_gbps
        };
        if pinned {
            base
        } else {
            base * self.unpinned_factor
        }
    }

    /// Cost model for a `cudaMalloc` of `bytes`.
    pub fn malloc_cost(&self, bytes: u64) -> SimTime {
        let mib = bytes.div_ceil(MB);
        SimTime(self.malloc_base.0 + self.malloc_per_mib.0 * mib)
    }

    /// Cost model for a `cudaFree`.
    pub fn free_cost(&self) -> SimTime {
        self.free_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_12gb() {
        assert_eq!(DeviceSpec::k40c().dram_bytes, 12 * GB);
        assert_eq!(DeviceSpec::titan_xp().dram_bytes, 12 * GB);
        assert!(DeviceSpec::titan_xp().peak_gflops > DeviceSpec::k40c().peak_gflops);
    }

    #[test]
    fn with_dram_overrides_capacity() {
        let d = DeviceSpec::k40c().with_dram(3 * GB);
        assert_eq!(d.dram_bytes, 3 * GB);
        assert_eq!(d.name, "NVIDIA Tesla K40c");
    }

    #[test]
    fn unpinned_transfers_are_slower() {
        let d = DeviceSpec::k40c();
        assert_eq!(d.pcie_gbps(true, true), 8.0);
        assert_eq!(d.pcie_gbps(true, false), 4.0);
    }

    #[test]
    fn malloc_cost_grows_with_size() {
        let d = DeviceSpec::k40c();
        let small = d.malloc_cost(KB);
        let big = d.malloc_cost(256 * MB);
        assert!(big > small);
        // Fixed part dominates tiny allocations.
        assert_eq!(small, SimTime::from_us(30) + SimTime::from_us(1));
    }
}
