//! Virtual time. All simulation time is kept in integer nanoseconds so the
//! discrete-event engine is exactly reproducible (no floating-point drift
//! between runs or platforms).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point (or span) on the virtual timeline, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided covers the handful of operations the simulator needs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to whole ns.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative durations are not representable");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in seconds (for reporting only — never fed back into the sim).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in milliseconds (for reporting only).
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// `self - other`, clamped at zero (spans cannot be negative).
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Time to move `bytes` over a link of `gbps` **GB/s** (decimal gigabytes).
///
/// Returns at least 1 ns for any non-zero transfer so that event ordering
/// stays strict.
pub fn transfer_time(bytes: u64, gbps: f64) -> SimTime {
    if bytes == 0 {
        return SimTime::ZERO;
    }
    debug_assert!(gbps > 0.0);
    let ns = (bytes as f64) / (gbps * 1e9) * 1e9;
    // `(ns + 0.5) as u64` == `ns.round() as u64` for every non-negative ns
    // this can produce (the one sub-ulp edge below 1.0 is absorbed by the
    // `.max(1)`), without the libc `round` call this hot path showed up for
    // in profiles.
    SimTime(((ns + 0.5) as u64).max(1))
}

/// Time to execute `flops` floating-point operations at `gflops` *effective*
/// GFLOP/s throughput.
pub fn compute_time(flops: u64, gflops: f64) -> SimTime {
    if flops == 0 {
        return SimTime::ZERO;
    }
    debug_assert!(gflops > 0.0);
    let ns = flops as f64 / gflops;
    // See `transfer_time` for why this equals `round()` here.
    SimTime(((ns + 0.5) as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_ns(), 1_500_000_000);
        assert!((SimTime::from_ns(250).as_secs_f64() - 2.5e-7).abs() < 1e-18);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 14);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 8 GB at 8 GB/s = 1 s.
        let t = transfer_time(8_000_000_000, 8.0);
        assert_eq!(t.as_ns(), 1_000_000_000);
        // Tiny transfers still take at least a nanosecond.
        assert!(transfer_time(1, 1000.0).as_ns() >= 1);
        assert_eq!(transfer_time(0, 8.0), SimTime::ZERO);
    }

    #[test]
    fn compute_time_matches_throughput() {
        // 4.29 TFLOPs at 4290 effective GFLOP/s = 1 s.
        let t = compute_time(4_290_000_000_000, 4290.0);
        assert_eq!(t.as_ns(), 1_000_000_000);
        assert_eq!(compute_time(0, 100.0), SimTime::ZERO);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_us(12)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
    }
}
