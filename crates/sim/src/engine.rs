//! The execution timeline: one compute engine plus two DMA engines.
//!
//! Modern GPUs expose independent copy engines, which is what lets the
//! SuperNeurons runtime hide offload (device→host) and prefetch
//! (host→device) traffic under kernel execution. We model each engine as a
//! serializing queue with a `busy_until` frontier: an operation submitted at
//! time `t` starts at `max(t, busy_until)`, runs for its duration, and moves
//! the frontier. Cross-engine ordering is expressed through [`Event`]s, the
//! analogue of `cudaEvent_t`.

use crate::time::SimTime;

/// Which hardware queue an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The SM array: kernels (layer forward/backward, recompute passes).
    Compute,
    /// Host→device DMA engine (prefetch).
    H2D,
    /// Device→host DMA engine (offload).
    D2H,
}

/// Direction of a DMA transfer, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    HostToDevice,
    DeviceToHost,
}

/// Completion marker for a submitted operation (cf. `cudaEvent_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the operation finishes.
    pub done_at: SimTime,
    /// Engine the operation ran on.
    pub engine: EngineKind,
}

impl Event {
    /// An event that is already complete at time zero.
    pub const COMPLETED: Event = Event {
        done_at: SimTime::ZERO,
        engine: EngineKind::Compute,
    };

    /// Has this event completed by time `now`?
    #[inline]
    pub fn is_done(&self, now: SimTime) -> bool {
        self.done_at <= now
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Engine {
    busy_until: SimTime,
    busy_total: SimTime,
    ops: u64,
}

/// Per-run transfer and utilization statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineStats {
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Total busy time of the compute engine.
    pub compute_busy: SimTime,
    /// Total busy time of the H2D engine.
    pub h2d_busy: SimTime,
    /// Total busy time of the D2H engine.
    pub d2h_busy: SimTime,
    /// Time the *caller* spent blocked waiting on events (stalls that the
    /// overlap machinery failed to hide).
    pub stall: SimTime,
    /// Number of compute operations issued.
    pub compute_ops: u64,
}

impl TimelineStats {
    /// Total PCIe traffic in bytes (both directions), the quantity Table 3
    /// reports.
    pub fn total_traffic(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

/// The device timeline: a virtual clock and the three engines.
///
/// The caller (the runtime's executor) plays the role of the host thread: it
/// submits work, occasionally waits on events, and advances `now` past
/// host-side costs (e.g. `cudaMalloc` latency) with [`Timeline::advance`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    now: SimTime,
    compute: Engine,
    h2d: Engine,
    d2h: Engine,
    h2d_bytes: u64,
    d2h_bytes: u64,
    stall: SimTime,
}

impl Timeline {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current host-thread virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn engine_mut(&mut self, kind: EngineKind) -> &mut Engine {
        match kind {
            EngineKind::Compute => &mut self.compute,
            EngineKind::H2D => &mut self.h2d,
            EngineKind::D2H => &mut self.d2h,
        }
    }

    /// Submit an operation of `duration` to `kind`'s queue, optionally not
    /// starting before `after` (a cross-engine dependency). Returns the
    /// completion event. Does **not** block the host thread.
    pub fn submit_after(
        &mut self,
        kind: EngineKind,
        duration: SimTime,
        after: Option<Event>,
    ) -> Event {
        let gate = after.map(|e| e.done_at).unwrap_or(SimTime::ZERO);
        let now = self.now;
        let eng = self.engine_mut(kind);
        let start = eng.busy_until.max(now).max(gate);
        let done = start + duration;
        eng.busy_until = done;
        eng.busy_total += duration;
        eng.ops += 1;
        Event {
            done_at: done,
            engine: kind,
        }
    }

    /// Submit an operation with no cross-engine dependency.
    pub fn submit(&mut self, kind: EngineKind, duration: SimTime) -> Event {
        self.submit_after(kind, duration, None)
    }

    /// Submit a DMA transfer of `bytes` at `gbps`, recording traffic.
    pub fn submit_transfer(
        &mut self,
        dir: TransferDirection,
        bytes: u64,
        gbps: f64,
        after: Option<Event>,
    ) -> Event {
        let duration = crate::time::transfer_time(bytes, gbps);
        match dir {
            TransferDirection::HostToDevice => {
                self.h2d_bytes += bytes;
                self.submit_after(EngineKind::H2D, duration, after)
            }
            TransferDirection::DeviceToHost => {
                self.d2h_bytes += bytes;
                self.submit_after(EngineKind::D2H, duration, after)
            }
        }
    }

    /// Block the host thread until `event` completes, accounting the stall.
    pub fn wait(&mut self, event: Event) {
        if event.done_at > self.now {
            self.stall += event.done_at - self.now;
            self.now = event.done_at;
        }
    }

    /// Block until *all* engines drain (cf. `cudaDeviceSynchronize`).
    pub fn sync_all(&mut self) {
        let frontier = self
            .compute
            .busy_until
            .max(self.h2d.busy_until)
            .max(self.d2h.busy_until);
        if frontier > self.now {
            self.stall += frontier - self.now;
            self.now = frontier;
        }
    }

    /// Advance the host thread by `d` (host-side work such as allocator
    /// bookkeeping or `cudaMalloc` latency, which serializes the host).
    pub fn advance(&mut self, d: SimTime) {
        self.now += d;
    }

    /// Move the host clock up to the compute frontier. The executor calls
    /// this after submitting a layer's kernels: the host thread in a training
    /// loop is logically synchronous with compute (it must observe results
    /// before scheduling dependent memory operations), while DMA engines
    /// drain in the background.
    pub fn join_compute(&mut self) {
        if self.compute.busy_until > self.now {
            self.now = self.compute.busy_until;
        }
    }

    /// Completion frontier of one engine.
    pub fn frontier(&self, kind: EngineKind) -> SimTime {
        match kind {
            EngineKind::Compute => self.compute.busy_until,
            EngineKind::H2D => self.h2d.busy_until,
            EngineKind::D2H => self.d2h.busy_until,
        }
    }

    /// Snapshot of accumulated statistics.
    pub fn stats(&self) -> TimelineStats {
        TimelineStats {
            h2d_bytes: self.h2d_bytes,
            d2h_bytes: self.d2h_bytes,
            compute_busy: self.compute.busy_total,
            h2d_busy: self.h2d.busy_total,
            d2h_busy: self.d2h.busy_total,
            stall: self.stall,
            compute_ops: self.compute.ops,
        }
    }

    /// Reset traffic/stall counters but keep the clock running. Used between
    /// warm-up and measured iterations.
    pub fn reset_stats(&mut self) {
        self.h2d_bytes = 0;
        self.d2h_bytes = 0;
        self.stall = SimTime::ZERO;
        self.compute.busy_total = SimTime::ZERO;
        self.h2d.busy_total = SimTime::ZERO;
        self.d2h.busy_total = SimTime::ZERO;
        self.compute.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_serialize_their_own_ops() {
        let mut tl = Timeline::new();
        let a = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        let b = tl.submit(EngineKind::Compute, SimTime::from_us(5));
        assert_eq!(a.done_at, SimTime::from_us(10));
        assert_eq!(b.done_at, SimTime::from_us(15));
    }

    #[test]
    fn engines_run_concurrently_with_each_other() {
        let mut tl = Timeline::new();
        let c = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        let d = tl.submit_transfer(
            TransferDirection::DeviceToHost,
            8_000, // 8 KB at 8 GB/s = 1 us
            8.0,
            None,
        );
        // The copy does not queue behind compute.
        assert_eq!(d.done_at, SimTime::from_us(1));
        assert_eq!(c.done_at, SimTime::from_us(10));
    }

    #[test]
    fn cross_engine_dependency_gates_start() {
        let mut tl = Timeline::new();
        let k = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        // Offload of the kernel's output cannot start before the kernel ends.
        let o = tl.submit_transfer(TransferDirection::DeviceToHost, 8_000, 8.0, Some(k));
        assert_eq!(o.done_at, SimTime::from_us(11));
    }

    #[test]
    fn wait_accounts_stall() {
        let mut tl = Timeline::new();
        let k = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        tl.wait(k);
        assert_eq!(tl.now(), SimTime::from_us(10));
        assert_eq!(tl.stats().stall, SimTime::from_us(10));
        // Waiting on an already-done event costs nothing.
        tl.wait(k);
        assert_eq!(tl.stats().stall, SimTime::from_us(10));
    }

    #[test]
    fn sync_all_reaches_latest_frontier() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(3));
        tl.submit(EngineKind::H2D, SimTime::from_us(9));
        tl.submit(EngineKind::D2H, SimTime::from_us(6));
        tl.sync_all();
        assert_eq!(tl.now(), SimTime::from_us(9));
    }

    #[test]
    fn traffic_is_accounted_per_direction() {
        let mut tl = Timeline::new();
        tl.submit_transfer(TransferDirection::HostToDevice, 100, 8.0, None);
        tl.submit_transfer(TransferDirection::DeviceToHost, 300, 8.0, None);
        let s = tl.stats();
        assert_eq!(s.h2d_bytes, 100);
        assert_eq!(s.d2h_bytes, 300);
        assert_eq!(s.total_traffic(), 400);
    }

    #[test]
    fn join_compute_does_not_wait_for_dma() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(2));
        tl.submit(EngineKind::D2H, SimTime::from_us(50));
        tl.join_compute();
        assert_eq!(tl.now(), SimTime::from_us(2));
    }

    #[test]
    fn reset_stats_keeps_clock() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(2));
        tl.sync_all();
        tl.reset_stats();
        assert_eq!(tl.now(), SimTime::from_us(2));
        assert_eq!(tl.stats().total_traffic(), 0);
        assert_eq!(tl.stats().stall, SimTime::ZERO);
    }
}
