//! The multi-stream execution timeline.
//!
//! Modern GPUs expose independent copy engines next to the SM array, which is
//! what lets the SuperNeurons runtime hide offload (device→host) and prefetch
//! (host→device) traffic under kernel execution. We model the device as a set
//! of **streams** — serializing queues with a `busy_until` frontier: an
//! operation submitted at time `t` starts at `max(t, busy_until, gates)`,
//! runs for its duration, and moves the frontier. Cross-stream ordering is
//! expressed through [`Event`]s (the analogue of `cudaEvent_t`), and a submit
//! may be gated on *any number* of events from other streams.
//!
//! Every [`Timeline`] starts with the three canonical streams of a CUDA
//! device — [`StreamId::COMPUTE`], [`StreamId::H2D`], [`StreamId::D2H`] —
//! and callers may [`Timeline::add_stream`] more (extra copy queues, a second
//! kernel stream) without touching this module. Each stream keeps a busy
//! *timeline* (coalesced `[start, end)` spans), from which
//! [`Timeline::overlap`] derives how much DMA time was hidden under compute —
//! the quantity the `overlap` bench experiment reports per policy.

use crate::time::SimTime;
use sn_telemetry::{ArgValue, SpanId, TraceSink, TrackId};

/// Which kind of hardware queue a stream models. Several streams may share a
/// kind (e.g. two H2D copy queues); statistics aggregate per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The SM array: kernels (layer forward/backward, recompute passes).
    Compute,
    /// Host→device DMA engine (prefetch).
    H2D,
    /// Device→host DMA engine (offload).
    D2H,
    /// Inter-GPU link port (NVLink/PCIe peer): the queue a device's
    /// collective operations serialize on. Not a canonical stream — group
    /// runtimes add one per device — and accounted separately from PCIe
    /// traffic (`link_bytes`/`link_busy`), so data-parallel gradient
    /// exchange never perturbs the paper's Table 3 transfer numbers.
    Link,
}

/// Direction of a DMA transfer, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    HostToDevice,
    DeviceToHost,
}

/// Handle to one stream of a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

impl StreamId {
    /// The canonical kernel stream every `Timeline` starts with.
    pub const COMPUTE: StreamId = StreamId(0);
    /// The canonical host→device copy stream.
    pub const H2D: StreamId = StreamId(1);
    /// The canonical device→host copy stream.
    pub const D2H: StreamId = StreamId(2);
}

/// Completion marker for a submitted operation (cf. `cudaEvent_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the operation finishes.
    pub done_at: SimTime,
    /// Stream the operation ran on.
    pub stream: StreamId,
}

impl Event {
    /// An event that is already complete at time zero.
    pub const COMPLETED: Event = Event {
        done_at: SimTime::ZERO,
        stream: StreamId::COMPUTE,
    };

    /// Has this event completed by time `now`?
    #[inline]
    pub fn is_done(&self, now: SimTime) -> bool {
        self.done_at <= now
    }
}

/// A tracked in-flight DMA: the completion event plus the payload size (for
/// traffic accounting and diagnostics by whoever holds it). This is what
/// subsystems hold instead of bare events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dma {
    pub event: Event,
    pub bytes: u64,
}

/// One serializing queue: its frontier plus the busy timeline since the last
/// stats reset.
#[derive(Debug, Clone)]
struct Stream {
    kind: EngineKind,
    busy_until: SimTime,
    busy_total: SimTime,
    ops: u64,
    /// Coalesced busy spans `[start, end)` in ns, ascending — per-stream ops
    /// serialize, so spans never overlap and append in order.
    intervals: Vec<(u64, u64)>,
}

impl Stream {
    fn new(kind: EngineKind) -> Stream {
        Stream {
            kind,
            busy_until: SimTime::ZERO,
            busy_total: SimTime::ZERO,
            ops: 0,
            intervals: Vec::new(),
        }
    }
}

/// Per-run transfer and utilization statistics, aggregated per stream kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineStats {
    /// Bytes moved host→device.
    pub h2d_bytes: u64,
    /// Bytes moved device→host.
    pub d2h_bytes: u64,
    /// Bytes this device moved over its inter-GPU link (collectives) —
    /// deliberately *not* part of [`TimelineStats::total_traffic`], which
    /// reports PCIe traffic only.
    pub link_bytes: u64,
    /// Total busy time of compute streams.
    pub compute_busy: SimTime,
    /// Total busy time of H2D streams.
    pub h2d_busy: SimTime,
    /// Total busy time of D2H streams.
    pub d2h_busy: SimTime,
    /// Total busy time of inter-GPU link streams.
    pub link_busy: SimTime,
    /// Time the *caller* spent blocked waiting on events (stalls that the
    /// overlap machinery failed to hide).
    pub stall: SimTime,
    /// Number of compute operations issued.
    pub compute_ops: u64,
}

impl TimelineStats {
    /// Total PCIe traffic in bytes (both directions), the quantity Table 3
    /// reports.
    pub fn total_traffic(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }
}

/// How much transfer time was hidden under compute, derived from the busy
/// timelines: `overlapped` is the length of the intersection between the
/// union of compute spans and the union of DMA spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlapStats {
    /// Union length of compute busy spans.
    pub compute_busy: SimTime,
    /// Union length of DMA busy spans (all transfer streams together).
    pub transfer_busy: SimTime,
    /// Length of compute ∩ transfer — DMA time hidden under kernels.
    pub overlapped: SimTime,
}

impl OverlapStats {
    /// Fraction of transfer time hidden under compute, in `[0, 1]`.
    /// Zero when no transfers occurred.
    pub fn fraction(&self) -> f64 {
        if self.transfer_busy == SimTime::ZERO {
            0.0
        } else {
            self.overlapped.as_ns() as f64 / self.transfer_busy.as_ns() as f64
        }
    }
}

/// Merge possibly-unsorted span lists into one sorted, disjoint union.
fn union_spans(lists: &[&[(u64, u64)]]) -> Vec<(u64, u64)> {
    let mut all: Vec<(u64, u64)> = lists.iter().flat_map(|l| l.iter().copied()).collect();
    all.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(all.len());
    for (s, e) in all {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two sorted, disjoint span lists.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

fn span_len(spans: &[(u64, u64)]) -> u64 {
    spans.iter().map(|(s, e)| e - s).sum()
}

/// A pending annotation for the *next* operation submitted to this timeline:
/// the span name, category, and typed arguments shown in the trace viewer.
/// Set via [`Timeline::trace_label`] right before the submit; unlabeled
/// operations fall back to their stream kind's generic name ("kernel",
/// "h2d", "d2h", "link").
#[derive(Debug, Clone)]
pub struct SpanLabel {
    pub name: String,
    pub cat: &'static str,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanLabel {
    pub fn new(name: impl Into<String>, cat: &'static str) -> SpanLabel {
        SpanLabel {
            name: name.into(),
            cat,
            args: Vec::new(),
        }
    }

    /// Attach a typed argument (builder-style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> SpanLabel {
        self.args.push((key, value.into()));
        self
    }
}

/// The timeline's connection to a [`TraceSink`]: one track per stream, the
/// completed-span index used to resolve gate events into flow arrows, and
/// the pending label. Present only while tracing is on, so the disabled
/// path in [`Timeline::submit_on`] is a single `is_some` branch.
#[derive(Debug, Clone)]
struct Tracer {
    sink: TraceSink,
    /// Process name in the trace (e.g. `"device 0"`).
    device: String,
    /// Track per stream, parallel to `Timeline::streams`.
    tracks: Vec<TrackId>,
    /// Stream kinds already registered (for track-name dedup).
    kinds: Vec<EngineKind>,
    /// Per stream: `(end_ns, span)` of every recorded span, ends strictly
    /// increasing (streams serialize and zero-duration ops are skipped), so
    /// a gate event resolves to its source span by binary search.
    ends: Vec<Vec<(u64, SpanId)>>,
    label: Option<SpanLabel>,
}

impl Tracer {
    fn register(&mut self, kind: EngineKind) {
        let base = match kind {
            EngineKind::Compute => "compute",
            EngineKind::H2D => "h2d",
            EngineKind::D2H => "d2h",
            EngineKind::Link => "link",
        };
        let nth = self.kinds.iter().filter(|k| **k == kind).count();
        let name = if nth == 0 {
            base.to_string()
        } else {
            format!("{base} {}", nth + 1)
        };
        self.tracks.push(self.sink.track(&self.device, &name));
        self.kinds.push(kind);
        self.ends.push(Vec::new());
    }

    /// The recorded span that ends exactly when `e` completes, if any.
    fn span_ending(&self, e: Event) -> SpanId {
        let Some(ends) = self.ends.get(e.stream.0) else {
            return SpanId::NONE;
        };
        match ends.binary_search_by_key(&e.done_at.as_ns(), |(ns, _)| *ns) {
            Ok(i) => ends[i].1,
            Err(_) => SpanId::NONE,
        }
    }
}

fn default_label(kind: EngineKind) -> (&'static str, &'static str) {
    match kind {
        EngineKind::Compute => ("kernel", "kernel"),
        EngineKind::H2D => ("h2d", "dma"),
        EngineKind::D2H => ("d2h", "dma"),
        EngineKind::Link => ("link", "collective"),
    }
}

/// The device timeline: a virtual clock plus a set of streams.
///
/// The caller (the runtime's executor) plays the role of the host thread: it
/// submits work, occasionally waits on events, and advances `now` past
/// host-side costs (e.g. `cudaMalloc` latency) with [`Timeline::advance`].
#[derive(Debug, Clone)]
pub struct Timeline {
    now: SimTime,
    streams: Vec<Stream>,
    h2d_bytes: u64,
    d2h_bytes: u64,
    link_bytes: u64,
    stall: SimTime,
    /// `None` unless a live [`TraceSink`] is attached — the disabled path
    /// costs one branch per submit and allocates nothing.
    tracer: Option<Box<Tracer>>,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

impl Timeline {
    /// A timeline with the three canonical streams of a CUDA device.
    pub fn new() -> Self {
        Timeline {
            now: SimTime::ZERO,
            streams: vec![
                Stream::new(EngineKind::Compute),
                Stream::new(EngineKind::H2D),
                Stream::new(EngineKind::D2H),
            ],
            h2d_bytes: 0,
            d2h_bytes: 0,
            link_bytes: 0,
            stall: SimTime::ZERO,
            tracer: None,
        }
    }

    /// Add another stream of the given kind (e.g. a second copy queue).
    pub fn add_stream(&mut self, kind: EngineKind) -> StreamId {
        self.streams.push(Stream::new(kind));
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.register(kind);
        }
        StreamId(self.streams.len() - 1)
    }

    /// Attach a [`TraceSink`]: every subsequent operation on this timeline
    /// is recorded as a span on a per-stream track under process `device`
    /// (e.g. `"device 0"`), and cross-stream gate events become flow
    /// arrows. Attaching a disabled sink detaches instead, keeping the
    /// submit hot path free of tracing work.
    pub fn attach_tracer(&mut self, sink: &TraceSink, device: &str) {
        if !sink.is_enabled() {
            self.tracer = None;
            return;
        }
        let mut tr = Tracer {
            sink: sink.clone(),
            device: device.to_string(),
            tracks: Vec::new(),
            kinds: Vec::new(),
            ends: Vec::new(),
            label: None,
        };
        let kinds: Vec<EngineKind> = self.streams.iter().map(|s| s.kind).collect();
        for kind in kinds {
            tr.register(kind);
        }
        self.tracer = Some(Box::new(tr));
    }

    /// Stop recording spans on this timeline.
    pub fn detach_tracer(&mut self) {
        self.tracer = None;
    }

    /// Whether a live trace sink is attached. Instrumented callers guard
    /// label construction behind this, so tracing is zero-cost when off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Annotate the *next* submitted operation with `label` (name, category,
    /// args) instead of its stream kind's generic name. A no-op when no
    /// tracer is attached.
    pub fn trace_label(&mut self, label: SpanLabel) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.label = Some(label);
        }
    }

    /// The recorded span that ends exactly when `e` completes (used to draw
    /// explicit flow arrows, e.g. from a backward kernel to the collective
    /// it feeds). [`SpanId::NONE`] when untraced or unresolvable.
    pub fn trace_span_ending(&self, e: Event) -> SpanId {
        match self.tracer.as_deref() {
            Some(tr) => tr.span_ending(e),
            None => SpanId::NONE,
        }
    }

    /// The most recently recorded span on `stream`, or [`SpanId::NONE`].
    pub fn trace_last_span(&self, stream: StreamId) -> SpanId {
        self.tracer
            .as_deref()
            .and_then(|tr| tr.ends.get(stream.0))
            .and_then(|ends| ends.last())
            .map(|(_, id)| *id)
            .unwrap_or(SpanId::NONE)
    }

    /// Draw an explicit flow arrow between two recorded spans (possibly on
    /// different devices sharing the sink). Either endpoint being
    /// [`SpanId::NONE`] drops the arrow; a no-op when untraced.
    pub fn trace_flow(&mut self, from: SpanId, to: SpanId) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.sink.flow(from, to);
        }
    }

    /// Record the just-submitted operation `[start, done)` on `stream` as a
    /// span, consuming the pending label, and resolve every cross-stream
    /// gate into a flow arrow ending at this span. Zero-duration ops consume
    /// the label but record nothing (they occupy no timeline width), keeping
    /// span ends strictly increasing per stream.
    fn trace_submit(&mut self, stream: StreamId, start: SimTime, done: SimTime, gates: &[Event]) {
        let kind = self.streams[stream.0].kind;
        let tr = self.tracer.as_deref_mut().expect("tracer attached");
        let label = tr.label.take();
        if done == start {
            return;
        }
        let (name, cat, args) = match label {
            Some(l) => (l.name, l.cat, l.args),
            None => {
                let (name, cat) = default_label(kind);
                (name.to_string(), cat, Vec::new())
            }
        };
        let id = tr.sink.span_with(
            tr.tracks[stream.0],
            name,
            cat,
            start.as_ns(),
            done.as_ns(),
            args,
        );
        for g in gates {
            if g.stream != stream && g.done_at > SimTime::ZERO {
                tr.sink.flow(tr.span_ending(*g), id);
            }
        }
        tr.ends[stream.0].push((done.as_ns(), id));
    }

    /// Number of streams (canonical + added).
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// The canonical stream for a kind. Link streams have no canonical
    /// slot — a device may have zero or several link ports, added via
    /// [`Timeline::add_stream`].
    pub fn canonical(kind: EngineKind) -> StreamId {
        match kind {
            EngineKind::Compute => StreamId::COMPUTE,
            EngineKind::H2D => StreamId::H2D,
            EngineKind::D2H => StreamId::D2H,
            EngineKind::Link => panic!("link streams have no canonical id; use add_stream"),
        }
    }

    /// Current host-thread virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Submit an operation of `duration` to `stream`, not starting before any
    /// of the `gates` complete (cross-stream dependencies). Returns the
    /// completion event. Does **not** block the host thread.
    pub fn submit_on(&mut self, stream: StreamId, duration: SimTime, gates: &[Event]) -> Event {
        let gate = gates
            .iter()
            .map(|e| e.done_at)
            .fold(SimTime::ZERO, SimTime::max);
        let now = self.now;
        let s = &mut self.streams[stream.0];
        let start = s.busy_until.max(now).max(gate);
        let done = start + duration;
        s.busy_until = done;
        s.busy_total += duration;
        s.ops += 1;
        if duration > SimTime::ZERO {
            match s.intervals.last_mut() {
                Some(last) if last.1 == start.as_ns() => last.1 = done.as_ns(),
                _ => s.intervals.push((start.as_ns(), done.as_ns())),
            }
        }
        if self.tracer.is_some() {
            self.trace_submit(stream, start, done, gates);
        }
        Event {
            done_at: done,
            stream,
        }
    }

    /// Submit to a kind's canonical stream with at most one dependency
    /// (the common case in the executor's hot path).
    pub fn submit_after(
        &mut self,
        kind: EngineKind,
        duration: SimTime,
        after: Option<Event>,
    ) -> Event {
        match after {
            Some(e) => self.submit_on(Self::canonical(kind), duration, &[e]),
            None => self.submit_on(Self::canonical(kind), duration, &[]),
        }
    }

    /// Submit an operation with no cross-stream dependency.
    pub fn submit(&mut self, kind: EngineKind, duration: SimTime) -> Event {
        self.submit_on(Self::canonical(kind), duration, &[])
    }

    /// Submit a DMA transfer of `bytes` at `gbps` on `stream` (which must be
    /// a transfer stream; its kind determines the accounting direction).
    pub fn transfer_on(&mut self, stream: StreamId, bytes: u64, gbps: f64, gates: &[Event]) -> Dma {
        let duration = crate::time::transfer_time(bytes, gbps);
        self.submit_timed_transfer(stream, bytes, duration, gates)
    }

    /// Submit a transfer of `bytes` with an explicit `duration` (used for
    /// collectives, whose wire time includes per-hop latencies the bandwidth
    /// formula cannot express). Accounting follows the stream's kind.
    pub fn submit_timed_transfer(
        &mut self,
        stream: StreamId,
        bytes: u64,
        duration: SimTime,
        gates: &[Event],
    ) -> Dma {
        match self.streams[stream.0].kind {
            EngineKind::H2D => self.h2d_bytes += bytes,
            EngineKind::D2H => self.d2h_bytes += bytes,
            EngineKind::Link => self.link_bytes += bytes,
            EngineKind::Compute => panic!("transfer submitted to a compute stream"),
        }
        let event = self.submit_on(stream, duration, gates);
        Dma { event, bytes }
    }

    /// Submit a DMA transfer on the direction's canonical stream.
    pub fn submit_transfer(
        &mut self,
        dir: TransferDirection,
        bytes: u64,
        gbps: f64,
        after: Option<Event>,
    ) -> Event {
        let stream = match dir {
            TransferDirection::HostToDevice => StreamId::H2D,
            TransferDirection::DeviceToHost => StreamId::D2H,
        };
        let gates: &[Event] = match &after {
            Some(e) => std::slice::from_ref(e),
            None => &[],
        };
        self.transfer_on(stream, bytes, gbps, gates).event
    }

    /// Block the host thread until `event` completes, accounting the stall.
    pub fn wait(&mut self, event: Event) {
        if event.done_at > self.now {
            self.stall += event.done_at - self.now;
            self.now = event.done_at;
        }
    }

    /// Block until *all* streams drain (cf. `cudaDeviceSynchronize`).
    pub fn sync_all(&mut self) {
        let frontier = self
            .streams
            .iter()
            .map(|s| s.busy_until)
            .fold(self.now, SimTime::max);
        if frontier > self.now {
            self.stall += frontier - self.now;
            self.now = frontier;
        }
    }

    /// Block until one stream drains (cf. `cudaStreamSynchronize`).
    pub fn sync_stream(&mut self, stream: StreamId) {
        self.wait(self.frontier_event(stream));
    }

    /// Advance the host thread by `d` (host-side work such as allocator
    /// bookkeeping or `cudaMalloc` latency, which serializes the host).
    #[inline]
    pub fn advance(&mut self, d: SimTime) {
        self.now += d;
    }

    /// Move the host clock up to the compute frontier. The executor calls
    /// this after submitting a layer's kernels: the host thread in a training
    /// loop is logically synchronous with compute (it must observe results
    /// before scheduling dependent memory operations), while DMA streams
    /// drain in the background.
    pub fn join_compute(&mut self) {
        let frontier = self
            .streams
            .iter()
            .filter(|s| s.kind == EngineKind::Compute)
            .map(|s| s.busy_until)
            .fold(self.now, SimTime::max);
        if frontier > self.now {
            self.now = frontier;
        }
    }

    /// Completion frontier of a kind's canonical stream.
    pub fn frontier(&self, kind: EngineKind) -> SimTime {
        self.streams[Self::canonical(kind).0].busy_until
    }

    /// Completion frontier of one stream.
    pub fn stream_frontier(&self, stream: StreamId) -> SimTime {
        self.streams[stream.0].busy_until
    }

    /// An event that completes when everything currently queued on `stream`
    /// has drained — the gate for "after all reads of X issued so far".
    pub fn frontier_event(&self, stream: StreamId) -> Event {
        Event {
            done_at: self.streams[stream.0].busy_until,
            stream,
        }
    }

    /// Snapshot of accumulated statistics, aggregated per stream kind.
    pub fn stats(&self) -> TimelineStats {
        let mut s = TimelineStats {
            h2d_bytes: self.h2d_bytes,
            d2h_bytes: self.d2h_bytes,
            link_bytes: self.link_bytes,
            stall: self.stall,
            ..TimelineStats::default()
        };
        for st in &self.streams {
            match st.kind {
                EngineKind::Compute => {
                    s.compute_busy += st.busy_total;
                    s.compute_ops += st.ops;
                }
                EngineKind::H2D => s.h2d_busy += st.busy_total,
                EngineKind::D2H => s.d2h_busy += st.busy_total,
                EngineKind::Link => s.link_busy += st.busy_total,
            }
        }
        s
    }

    fn overlap_of(&self, a: impl Fn(&Stream) -> bool, b: impl Fn(&Stream) -> bool) -> OverlapStats {
        let left: Vec<&[(u64, u64)]> = self
            .streams
            .iter()
            .filter(|s| a(s))
            .map(|s| s.intervals.as_slice())
            .collect();
        let right: Vec<&[(u64, u64)]> = self
            .streams
            .iter()
            .filter(|s| b(s))
            .map(|s| s.intervals.as_slice())
            .collect();
        let cu = union_spans(&left);
        let tu = union_spans(&right);
        OverlapStats {
            compute_busy: SimTime::from_ns(span_len(&cu)),
            transfer_busy: SimTime::from_ns(span_len(&tu)),
            overlapped: SimTime::from_ns(intersect_len(&cu, &tu)),
        }
    }

    /// Compute/PCIe-transfer overlap since the last stats reset, from the
    /// per-stream busy timelines. Link (collective) streams are excluded —
    /// they have their own query, [`Timeline::link_overlap`] — so the
    /// single-device offload/prefetch numbers are unchanged by the presence
    /// of a link port.
    pub fn overlap(&self) -> OverlapStats {
        self.overlap_of(
            |s| s.kind == EngineKind::Compute,
            |s| matches!(s.kind, EngineKind::H2D | EngineKind::D2H),
        )
    }

    /// Compute/collective overlap: how much inter-GPU link time was hidden
    /// under kernels (`transfer_busy`/`overlapped` refer to link spans).
    pub fn link_overlap(&self) -> OverlapStats {
        self.overlap_of(
            |s| s.kind == EngineKind::Compute,
            |s| s.kind == EngineKind::Link,
        )
    }

    /// Overlap between two explicit stream sets: union of `a`'s busy spans
    /// (reported as `compute_busy`) against the union of `b`'s (reported as
    /// `transfer_busy`).
    pub fn overlap_between(&self, a: &[StreamId], b: &[StreamId]) -> OverlapStats {
        let left: Vec<&[(u64, u64)]> = a
            .iter()
            .map(|id| self.streams[id.0].intervals.as_slice())
            .collect();
        let right: Vec<&[(u64, u64)]> = b
            .iter()
            .map(|id| self.streams[id.0].intervals.as_slice())
            .collect();
        let cu = union_spans(&left);
        let tu = union_spans(&right);
        OverlapStats {
            compute_busy: SimTime::from_ns(span_len(&cu)),
            transfer_busy: SimTime::from_ns(span_len(&tu)),
            overlapped: SimTime::from_ns(intersect_len(&cu, &tu)),
        }
    }

    /// Reset traffic/stall/busy counters and the busy timelines, but keep
    /// the clock and frontiers running. Used between warm-up and measured
    /// iterations.
    pub fn reset_stats(&mut self) {
        self.h2d_bytes = 0;
        self.d2h_bytes = 0;
        self.link_bytes = 0;
        self.stall = SimTime::ZERO;
        for s in &mut self.streams {
            s.busy_total = SimTime::ZERO;
            s.ops = 0;
            s.intervals.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_serialize_their_own_ops() {
        let mut tl = Timeline::new();
        let a = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        let b = tl.submit(EngineKind::Compute, SimTime::from_us(5));
        assert_eq!(a.done_at, SimTime::from_us(10));
        assert_eq!(b.done_at, SimTime::from_us(15));
    }

    #[test]
    fn engines_run_concurrently_with_each_other() {
        let mut tl = Timeline::new();
        let c = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        let d = tl.submit_transfer(
            TransferDirection::DeviceToHost,
            8_000, // 8 KB at 8 GB/s = 1 us
            8.0,
            None,
        );
        // The copy does not queue behind compute.
        assert_eq!(d.done_at, SimTime::from_us(1));
        assert_eq!(c.done_at, SimTime::from_us(10));
    }

    #[test]
    fn cross_engine_dependency_gates_start() {
        let mut tl = Timeline::new();
        let k = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        // Offload of the kernel's output cannot start before the kernel ends.
        let o = tl.submit_transfer(TransferDirection::DeviceToHost, 8_000, 8.0, Some(k));
        assert_eq!(o.done_at, SimTime::from_us(11));
    }

    #[test]
    fn multi_gate_submit_waits_for_the_latest() {
        let mut tl = Timeline::new();
        let a = tl.submit(EngineKind::Compute, SimTime::from_us(3));
        let b = tl.submit_transfer(TransferDirection::HostToDevice, 8_000_000, 8.0, None); // 1 ms
        let c = tl.submit_on(StreamId::COMPUTE, SimTime::from_us(2), &[a, b]);
        assert_eq!(c.done_at, b.done_at + SimTime::from_us(2));
    }

    #[test]
    fn added_streams_serialize_independently() {
        let mut tl = Timeline::new();
        let d2h_b = tl.add_stream(EngineKind::D2H);
        let x = tl.transfer_on(StreamId::D2H, 8_000, 8.0, &[]);
        let y = tl.transfer_on(d2h_b, 8_000, 8.0, &[]);
        // Two D2H streams run concurrently; one serializes.
        assert_eq!(x.event.done_at, SimTime::from_us(1));
        assert_eq!(y.event.done_at, SimTime::from_us(1));
        let z = tl.transfer_on(d2h_b, 8_000, 8.0, &[]);
        assert_eq!(z.event.done_at, SimTime::from_us(2));
        // Accounting aggregates across streams of a kind.
        assert_eq!(tl.stats().d2h_bytes, 24_000);
        assert_eq!(tl.stats().d2h_busy, SimTime::from_us(3));
    }

    #[test]
    fn dma_completion_never_precedes_its_enqueue() {
        let mut tl = Timeline::new();
        tl.advance(SimTime::from_us(7));
        let d = tl.transfer_on(StreamId::D2H, 1, 1000.0, &[]);
        assert!(d.event.done_at > SimTime::from_us(7));
        assert_eq!(d.bytes, 1);
        // Even a gate in the past cannot start a transfer before `now`.
        let gated = tl.transfer_on(StreamId::H2D, 8_000, 8.0, &[Event::COMPLETED]);
        assert!(gated.event.done_at >= SimTime::from_us(8));
    }

    #[test]
    fn wait_accounts_stall() {
        let mut tl = Timeline::new();
        let k = tl.submit(EngineKind::Compute, SimTime::from_us(10));
        tl.wait(k);
        assert_eq!(tl.now(), SimTime::from_us(10));
        assert_eq!(tl.stats().stall, SimTime::from_us(10));
        // Waiting on an already-done event costs nothing.
        tl.wait(k);
        assert_eq!(tl.stats().stall, SimTime::from_us(10));
    }

    #[test]
    fn sync_all_reaches_latest_frontier() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(3));
        tl.submit(EngineKind::H2D, SimTime::from_us(9));
        tl.submit(EngineKind::D2H, SimTime::from_us(6));
        tl.sync_all();
        assert_eq!(tl.now(), SimTime::from_us(9));
    }

    #[test]
    fn sync_stream_drains_only_that_stream() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::H2D, SimTime::from_us(9));
        tl.submit(EngineKind::D2H, SimTime::from_us(6));
        tl.sync_stream(StreamId::D2H);
        assert_eq!(tl.now(), SimTime::from_us(6));
        assert_eq!(tl.frontier(EngineKind::H2D), SimTime::from_us(9));
    }

    #[test]
    fn traffic_is_accounted_per_direction() {
        let mut tl = Timeline::new();
        tl.submit_transfer(TransferDirection::HostToDevice, 100, 8.0, None);
        tl.submit_transfer(TransferDirection::DeviceToHost, 300, 8.0, None);
        let s = tl.stats();
        assert_eq!(s.h2d_bytes, 100);
        assert_eq!(s.d2h_bytes, 300);
        assert_eq!(s.total_traffic(), 400);
    }

    #[test]
    fn join_compute_does_not_wait_for_dma() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(2));
        tl.submit(EngineKind::D2H, SimTime::from_us(50));
        tl.join_compute();
        assert_eq!(tl.now(), SimTime::from_us(2));
    }

    #[test]
    fn reset_stats_keeps_clock() {
        let mut tl = Timeline::new();
        tl.submit(EngineKind::Compute, SimTime::from_us(2));
        tl.sync_all();
        tl.reset_stats();
        assert_eq!(tl.now(), SimTime::from_us(2));
        assert_eq!(tl.stats().total_traffic(), 0);
        assert_eq!(tl.stats().stall, SimTime::ZERO);
        assert_eq!(tl.overlap(), OverlapStats::default());
    }

    #[test]
    fn overlap_measures_hidden_transfer_time() {
        let mut tl = Timeline::new();
        // Compute busy [0, 10) us; one transfer [0, 4) us fully hidden, a
        // second [10, 14) us entirely in the open.
        tl.submit(EngineKind::Compute, SimTime::from_us(10));
        tl.transfer_on(StreamId::D2H, 32_000, 8.0, &[]); // 4 us from t=0
        tl.sync_stream(StreamId::D2H);
        tl.join_compute();
        tl.transfer_on(StreamId::H2D, 32_000, 8.0, &[]); // 4 us from t=10
        tl.sync_all();
        let o = tl.overlap();
        assert_eq!(o.compute_busy, SimTime::from_us(10));
        assert_eq!(o.transfer_busy, SimTime::from_us(8));
        assert_eq!(o.overlapped, SimTime::from_us(4));
        assert!((o.fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_is_zero_when_host_serializes_every_transfer() {
        let mut tl = Timeline::new();
        for _ in 0..3 {
            let k = tl.submit(EngineKind::Compute, SimTime::from_us(5));
            tl.wait(k);
            let d = tl.submit_transfer(TransferDirection::DeviceToHost, 16_000, 8.0, None);
            tl.wait(d);
        }
        let o = tl.overlap();
        assert_eq!(o.overlapped, SimTime::ZERO);
        assert_eq!(o.fraction(), 0.0);
    }

    #[test]
    fn per_stream_busy_time_never_exceeds_makespan() {
        let mut tl = Timeline::new();
        for i in 0..5u64 {
            let k = tl.submit(EngineKind::Compute, SimTime::from_us(2 + i));
            tl.submit_transfer(
                TransferDirection::DeviceToHost,
                8_000 * (i + 1),
                8.0,
                Some(k),
            );
            tl.submit_transfer(TransferDirection::HostToDevice, 4_000, 8.0, None);
            tl.join_compute();
        }
        tl.sync_all();
        let makespan = tl.now();
        let s = tl.stats();
        assert!(s.compute_busy <= makespan);
        assert!(s.h2d_busy <= makespan);
        assert!(s.d2h_busy <= makespan);
        let o = tl.overlap();
        assert!(o.compute_busy <= makespan && o.transfer_busy <= makespan);
        assert!(o.overlapped <= o.compute_busy.min(o.transfer_busy));
    }
}
