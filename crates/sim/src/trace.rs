//! Step-level execution traces.
//!
//! Fig. 10 of the paper plots, for every forward/backward step of an AlexNet
//! iteration, the bytes resident on the device and the number of live
//! tensors. The executor records one [`StepRecord`] per step into a
//! [`StepTrace`]; the experiment harness prints the same two series.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Which half of the iteration a step belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    Forward,
    Backward,
}

/// One execution step (one layer's forward or backward computation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRecord {
    /// 1-based step index within the iteration (1..=2N).
    pub step: usize,
    /// Layer name, e.g. `CONV2` or `POOL5`. Interned: the executor records
    /// hundreds of steps per iteration, so each record shares the net's name
    /// allocation instead of cloning a fresh `String`.
    pub layer: Arc<str>,
    /// Forward or backward half.
    pub phase: Phase,
    /// Device bytes resident *during* this step's computation (the quantity
    /// whose maximum is `peak_m`).
    pub resident_bytes: u64,
    /// Number of live (device-resident) tensors during the step.
    pub live_tensors: usize,
    /// Free device bytes available for convolution workspace at this step.
    pub free_bytes: u64,
    /// Virtual time when the step's computation completed.
    pub completed_at: SimTime,
}

/// A whole iteration's trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StepTrace {
    pub records: Vec<StepRecord>,
}

impl StepTrace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, r: StepRecord) {
        self.records.push(r);
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Peak resident bytes over the iteration — `peak_m`.
    pub fn peak_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.resident_bytes)
            .max()
            .unwrap_or(0)
    }

    /// The step achieving the peak (first if several tie).
    pub fn peak_step(&self) -> Option<&StepRecord> {
        let peak = self.peak_bytes();
        self.records.iter().find(|r| r.resident_bytes == peak)
    }

    /// Peak live tensor count.
    pub fn peak_live_tensors(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.live_tensors)
            .max()
            .unwrap_or(0)
    }

    /// Records for one phase only.
    pub fn phase(&self, p: Phase) -> impl Iterator<Item = &StepRecord> {
        self.records.iter().filter(move |r| r.phase == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: usize, layer: &str, phase: Phase, bytes: u64, live: usize) -> StepRecord {
        StepRecord {
            step,
            layer: layer.into(),
            phase,
            resident_bytes: bytes,
            live_tensors: live,
            free_bytes: 0,
            completed_at: SimTime::ZERO,
        }
    }

    #[test]
    fn peak_detection() {
        let mut t = StepTrace::new();
        t.push(rec(1, "CONV1", Phase::Forward, 100, 2));
        t.push(rec(2, "POOL1", Phase::Forward, 300, 5));
        t.push(rec(3, "POOL1", Phase::Backward, 250, 4));
        assert_eq!(t.peak_bytes(), 300);
        assert_eq!(&*t.peak_step().unwrap().layer, "POOL1");
        assert_eq!(t.peak_live_tensors(), 5);
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = StepTrace::new();
        assert_eq!(t.peak_bytes(), 0);
        assert!(t.peak_step().is_none());
    }

    #[test]
    fn phase_filter() {
        let mut t = StepTrace::new();
        t.push(rec(1, "A", Phase::Forward, 1, 1));
        t.push(rec(2, "A", Phase::Backward, 2, 1));
        assert_eq!(t.phase(Phase::Forward).count(), 1);
        assert_eq!(t.phase(Phase::Backward).count(), 1);
    }
}
