//! The device group: N per-device timelines plus the inter-GPU fabric.
//!
//! Data-parallel training runs one replica per device and synchronizes
//! gradients with collectives (ring all-reduce). Two properties of real
//! multi-GPU hardware matter to the runtime and are modeled here:
//!
//! * **Lockstep collectives** — a ring all-reduce cannot begin until *every*
//!   participant's payload is ready and every link port is free, and it
//!   completes on all participants at the same instant. [`group_collective`]
//!   computes that common start from cross-device [`Event`]s (an `Event` is
//!   just a completion time, so events from one device's timeline gate
//!   submissions on another's) and submits the wire time to each device's
//!   link stream, returning the shared completion event.
//! * **Per-device serialization** — each device owns one link port (an
//!   [`EngineKind::Link`] stream): successive collectives queue behind each
//!   other per device, exactly like kernels on a compute stream, which is
//!   what makes bucketed all-reduce overlap backward compute without ever
//!   reordering buckets.
//!
//! [`GroupEngine`] is the canonical owner of a group's timelines (used by
//! tests and by standalone group simulations); the runtime's group
//! interpreter implements [`DeviceGroup`] over the timelines its per-replica
//! executors already own, so both drive the identical fabric code.

use crate::engine::{EngineKind, Event, OverlapStats, StreamId, Timeline, TimelineStats};
use crate::time::SimTime;

/// Access to a group of device timelines and their link ports. The fabric
/// functions ([`group_collective`], [`group_sync`], [`group_now`]) are
/// generic over this, so a group can be the owning [`GroupEngine`] or any
/// structure (e.g. a vector of executors) that embeds one timeline per
/// device.
pub trait DeviceGroup {
    /// Number of devices in the group.
    fn group_len(&self) -> usize;
    /// Device `i`'s timeline.
    fn timeline(&self, i: usize) -> &Timeline;
    /// Device `i`'s timeline, mutably.
    fn timeline_mut(&mut self, i: usize) -> &mut Timeline;
    /// Device `i`'s link-port stream (an [`EngineKind::Link`] stream on its
    /// timeline).
    fn link_stream(&self, i: usize) -> StreamId;
}

/// Submit one collective of `duration` moving `wire_bytes` per participant,
/// gated on `ready` (typically one gradient-ready event per device — events
/// may come from *any* device's streams). The collective starts when the
/// last ready event has completed AND every device's link port is free AND
/// every host clock has reached the start; it completes simultaneously on
/// every device. Returns the common completion event.
pub fn group_collective<G: DeviceGroup + ?Sized>(
    g: &mut G,
    duration: SimTime,
    wire_bytes: u64,
    ready: &[Event],
) -> Event {
    let n = g.group_len();
    assert!(n > 0, "collective on an empty device group");
    // The lockstep start: last gradient, busiest link port, furthest clock.
    let mut start = ready
        .iter()
        .map(|e| e.done_at)
        .fold(SimTime::ZERO, SimTime::max);
    for i in 0..n {
        let tl = g.timeline(i);
        start = start
            .max(tl.now())
            .max(tl.stream_frontier(g.link_stream(i)));
    }
    let mut done = Event {
        done_at: start + duration,
        stream: g.link_stream(0),
    };
    for i in 0..n {
        let link = g.link_stream(i);
        let gate = Event {
            done_at: start,
            stream: link,
        };
        let dma = g
            .timeline_mut(i)
            .submit_timed_transfer(link, wire_bytes, duration, &[gate]);
        debug_assert_eq!(
            dma.event.done_at, done.done_at,
            "collective must complete in lockstep on every device"
        );
        done = Event {
            done_at: dma.event.done_at,
            stream: link,
        };
    }
    done
}

/// Drain every device's streams (cf. a group-wide `cudaDeviceSynchronize`).
pub fn group_sync<G: DeviceGroup + ?Sized>(g: &mut G) {
    for i in 0..g.group_len() {
        g.timeline_mut(i).sync_all();
    }
}

/// The group's clock: the furthest of the member host clocks.
pub fn group_now<G: DeviceGroup + ?Sized>(g: &G) -> SimTime {
    (0..g.group_len())
        .map(|i| g.timeline(i).now())
        .fold(SimTime::ZERO, SimTime::max)
}

/// The canonical device group: owns `n` multi-stream [`Timeline`]s, each
/// with one added link-port stream.
#[derive(Debug, Clone)]
pub struct GroupEngine {
    devices: Vec<Timeline>,
    links: Vec<StreamId>,
}

impl GroupEngine {
    /// A group of `n` devices, each with the three canonical streams plus a
    /// link port.
    pub fn new(n: usize) -> GroupEngine {
        assert!(n > 0, "a device group needs at least one device");
        let mut devices = Vec::with_capacity(n);
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            let mut tl = Timeline::new();
            links.push(tl.add_stream(EngineKind::Link));
            devices.push(tl);
        }
        GroupEngine { devices, links }
    }

    pub fn len(&self) -> usize {
        self.devices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    pub fn device(&self, i: usize) -> &Timeline {
        &self.devices[i]
    }

    pub fn device_mut(&mut self, i: usize) -> &mut Timeline {
        &mut self.devices[i]
    }

    pub fn link(&self, i: usize) -> StreamId {
        self.links[i]
    }

    /// See [`group_collective`].
    pub fn collective(&mut self, duration: SimTime, wire_bytes: u64, ready: &[Event]) -> Event {
        group_collective(self, duration, wire_bytes, ready)
    }

    /// Drain all streams of every device.
    pub fn sync_all(&mut self) {
        group_sync(self)
    }

    /// The furthest member host clock.
    pub fn now(&self) -> SimTime {
        group_now(self)
    }

    /// Device `i`'s accumulated statistics.
    pub fn stats(&self, i: usize) -> TimelineStats {
        self.devices[i].stats()
    }

    /// Device `i`'s compute/collective overlap.
    pub fn link_overlap(&self, i: usize) -> OverlapStats {
        self.devices[i].link_overlap()
    }

    /// Reset every device's traffic/busy counters, keeping clocks running.
    pub fn reset_stats(&mut self) {
        for d in &mut self.devices {
            d.reset_stats();
        }
    }
}

impl DeviceGroup for GroupEngine {
    fn group_len(&self) -> usize {
        self.devices.len()
    }

    fn timeline(&self, i: usize) -> &Timeline {
        &self.devices[i]
    }

    fn timeline_mut(&mut self, i: usize) -> &mut Timeline {
        &mut self.devices[i]
    }

    fn link_stream(&self, i: usize) -> StreamId {
        self.links[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_waits_for_the_slowest_replica() {
        let mut g = GroupEngine::new(3);
        // Replica 1's backward runs longest.
        let ready: Vec<Event> = [5u64, 40, 10]
            .iter()
            .enumerate()
            .map(|(i, us)| {
                g.device_mut(i)
                    .submit(EngineKind::Compute, SimTime::from_us(*us))
            })
            .collect();
        let done = g.collective(SimTime::from_us(7), 1_000, &ready);
        assert_eq!(done.done_at, SimTime::from_us(47));
    }

    #[test]
    fn collective_completes_in_lockstep_on_every_link() {
        let mut g = GroupEngine::new(4);
        let done = g.collective(SimTime::from_us(3), 64, &[]);
        for i in 0..4 {
            assert_eq!(g.device(i).stream_frontier(g.link(i)), done.done_at);
            assert_eq!(g.stats(i).link_bytes, 64);
        }
    }

    #[test]
    fn successive_collectives_serialize_on_the_link_port() {
        let mut g = GroupEngine::new(2);
        let a = g.collective(SimTime::from_us(5), 10, &[]);
        // Second bucket is ready immediately but must queue behind the first.
        let b = g.collective(SimTime::from_us(5), 10, &[]);
        assert_eq!(a.done_at, SimTime::from_us(5));
        assert_eq!(b.done_at, SimTime::from_us(10));
    }

    #[test]
    fn a_late_link_port_delays_everyone() {
        let mut g = GroupEngine::new(2);
        // Device 0's port is busy until t=20us with an earlier collective…
        let link0 = g.link(0);
        g.device_mut(0)
            .submit_timed_transfer(link0, 1, SimTime::from_us(20), &[]);
        // …so a group collective whose payloads are ready at t=0 still
        // cannot start before 20us, on either device.
        let done = g.collective(SimTime::from_us(4), 8, &[]);
        assert_eq!(done.done_at, SimTime::from_us(24));
        assert_eq!(g.device(1).stream_frontier(g.link(1)), done.done_at);
    }

    #[test]
    fn link_traffic_is_not_pcie_traffic() {
        let mut g = GroupEngine::new(2);
        g.collective(SimTime::from_us(2), 4_096, &[]);
        for i in 0..2 {
            let s = g.stats(i);
            assert_eq!(s.link_bytes, 4_096);
            assert_eq!(s.total_traffic(), 0, "collectives must not count as PCIe");
            assert_eq!(s.link_busy, SimTime::from_us(2));
        }
    }

    #[test]
    fn link_overlap_measures_collectives_hidden_under_compute() {
        let mut g = GroupEngine::new(2);
        for i in 0..2 {
            g.device_mut(i)
                .submit(EngineKind::Compute, SimTime::from_us(10));
        }
        // A 4us collective launched at t=0 hides fully under compute.
        g.collective(SimTime::from_us(4), 100, &[]);
        // A second one, ready only at compute end, is fully exposed.
        let ready: Vec<Event> = (0..2)
            .map(|i| g.device(i).frontier_event(StreamId::COMPUTE))
            .collect();
        g.collective(SimTime::from_us(4), 100, &ready);
        g.sync_all();
        for i in 0..2 {
            let o = g.link_overlap(i);
            assert_eq!(o.transfer_busy, SimTime::from_us(8));
            assert_eq!(o.overlapped, SimTime::from_us(4));
            assert!((o.fraction() - 0.5).abs() < 1e-12);
            // The PCIe overlap query is blind to link streams.
            assert_eq!(g.device(i).overlap().transfer_busy, SimTime::ZERO);
        }
    }

    #[test]
    fn cross_device_events_gate_submissions() {
        // An event from device 0's compute stream gates a kernel on device 1
        // — events are completion times, valid across timelines.
        let mut g = GroupEngine::new(2);
        let e0 = g
            .device_mut(0)
            .submit(EngineKind::Compute, SimTime::from_us(9));
        let e1 = g
            .device_mut(1)
            .submit_on(StreamId::COMPUTE, SimTime::from_us(2), &[e0]);
        assert_eq!(e1.done_at, SimTime::from_us(11));
    }

    #[test]
    fn group_clock_and_sync_track_the_furthest_member() {
        let mut g = GroupEngine::new(2);
        g.device_mut(1)
            .submit(EngineKind::Compute, SimTime::from_us(30));
        assert_eq!(g.now(), SimTime::ZERO, "submission does not move clocks");
        g.sync_all();
        assert_eq!(g.now(), SimTime::from_us(30));
    }
}
