//! Device allocation interface and the `cudaMalloc`/`cudaFree` cost model.
//!
//! The SuperNeurons heap pool (`sn-mempool`) and the raw CUDA allocator both
//! implement [`DeviceAllocator`]; the executor is generic over the trait so
//! Table 2 (pool vs. `cudaMalloc`) is a one-line policy switch.

use crate::spec::DeviceSpec;
use crate::time::SimTime;

/// Opaque handle for a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AllocId(pub u64);

/// A successful allocation: a device address plus the host-side latency the
/// call cost (charged to the timeline by the caller).
#[derive(Debug, Clone, Copy)]
pub struct AllocGrant {
    pub id: AllocId,
    /// Byte offset within device DRAM.
    pub addr: u64,
    /// Rounded-up size actually reserved.
    pub bytes: u64,
    /// Host-side latency of the allocation call.
    pub cost: SimTime,
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free region can satisfy the request. `largest < requested ≤ free`
    /// means fragmentation, not exhaustion: enough total bytes exist but no
    /// contiguous run is big enough.
    OutOfMemory {
        requested: u64,
        /// Total free bytes across all fragments.
        free: u64,
        /// Largest contiguous free fragment.
        largest: u64,
    },
    /// The handle passed to `free` is unknown (double free or corruption).
    UnknownAllocation,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                free,
                largest,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} bytes, {free} free \
                     (largest contiguous fragment {largest})"
                )?;
                if largest < requested && *requested <= *free {
                    write!(f, " — fragmentation, not exhaustion")?;
                }
                Ok(())
            }
            AllocError::UnknownAllocation => write!(f, "unknown allocation handle"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Abstract device memory allocator.
///
/// Implementations must be exact about capacity: the runtime's correctness
/// claims (`peak_m ≤ DRAM`) are checked against [`DeviceAllocator::used`] and
/// the high-water mark.
pub trait DeviceAllocator {
    /// Reserve `bytes` of device memory.
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError>;

    /// Release a previous grant, returning the host-side latency of the call.
    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError>;

    /// Bytes currently reserved.
    fn used(&self) -> u64;

    /// Total capacity in bytes.
    fn capacity(&self) -> u64;

    /// Maximum of `used()` ever observed.
    fn high_water(&self) -> u64;

    /// Bytes available for a new request (capacity-aware, fragmentation-aware
    /// where applicable).
    fn free_bytes(&self) -> u64 {
        self.capacity() - self.used()
    }

    /// Largest single allocation that could currently succeed. For
    /// non-fragmenting allocators this equals `free_bytes()`.
    fn largest_free_contiguous(&self) -> u64 {
        self.free_bytes()
    }

    /// Reset the high-water mark (between warm-up and measurement).
    fn reset_high_water(&mut self);
}

/// `cudaMalloc`/`cudaFree` stand-in: an ideal (never-fragmenting) capacity
/// tracker whose calls cost the latencies of [`DeviceSpec`]. This is the
/// baseline SuperNeurons' heap pool is measured against in Table 2; real
/// cudaMalloc also implicitly synchronizes the device, which is captured by
/// the relatively large fixed latencies.
#[derive(Debug, Clone)]
pub struct CudaAllocator {
    capacity: u64,
    used: u64,
    high_water: u64,
    next_id: u64,
    malloc_base: SimTime,
    malloc_per_mib: SimTime,
    free_base: SimTime,
    /// ID→bytes for live grants. Keys are a sequential counter, so the
    /// deterministic single-multiply Fx hasher beats SipHash with nothing
    /// lost (no untrusted keys here).
    live: fxhash::FxHashMap<u64, u64>,
    /// Monotone bump pointer for fake addresses (never reused; real CUDA
    /// addresses are also opaque).
    next_addr: u64,
    pub malloc_calls: u64,
    pub free_calls: u64,
    pub alloc_time: SimTime,
}

impl CudaAllocator {
    pub fn new(spec: &DeviceSpec) -> Self {
        CudaAllocator {
            capacity: spec.dram_bytes,
            used: 0,
            high_water: 0,
            next_id: 0,
            malloc_base: spec.malloc_base,
            malloc_per_mib: spec.malloc_per_mib,
            free_base: spec.free_base,
            live: fxhash::FxHashMap::default(),
            next_addr: 0,
            malloc_calls: 0,
            free_calls: 0,
            alloc_time: SimTime::ZERO,
        }
    }

    fn malloc_cost(&self, bytes: u64) -> SimTime {
        let mib = bytes.div_ceil(crate::spec::MB);
        SimTime(self.malloc_base.0 + self.malloc_per_mib.0 * mib)
    }
}

impl DeviceAllocator for CudaAllocator {
    fn alloc(&mut self, bytes: u64) -> Result<AllocGrant, AllocError> {
        // cudaMalloc rounds to 256-byte granularity.
        let bytes = bytes.max(1).div_ceil(256) * 256;
        if self.used + bytes > self.capacity {
            // The cudaMalloc model never fragments (it is a capacity meter,
            // not an address-space model), so the largest "fragment" is all
            // of the free space.
            return Err(AllocError::OutOfMemory {
                requested: bytes,
                free: self.capacity - self.used,
                largest: self.capacity - self.used,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let addr = self.next_addr;
        self.next_addr += bytes;
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        self.live.insert(id, bytes);
        self.malloc_calls += 1;
        let cost = self.malloc_cost(bytes);
        self.alloc_time += cost;
        Ok(AllocGrant {
            id: AllocId(id),
            addr,
            bytes,
            cost,
        })
    }

    fn free(&mut self, id: AllocId) -> Result<SimTime, AllocError> {
        let bytes = self
            .live
            .remove(&id.0)
            .ok_or(AllocError::UnknownAllocation)?;
        self.used -= bytes;
        self.free_calls += 1;
        self.alloc_time += self.free_base;
        Ok(self.free_base)
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn high_water(&self) -> u64 {
        self.high_water
    }

    fn reset_high_water(&mut self) {
        self.high_water = self.used;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MB;

    fn alloc() -> CudaAllocator {
        CudaAllocator::new(&DeviceSpec::k40c().with_dram(MB))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = alloc();
        let g = a.alloc(1000).unwrap();
        assert_eq!(g.bytes, 1024); // rounded to 256B granularity
        assert_eq!(a.used(), 1024);
        a.free(g.id).unwrap();
        assert_eq!(a.used(), 0);
        assert_eq!(a.high_water(), 1024);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let mut a = alloc();
        let _g = a.alloc(MB - 256).unwrap();
        let err = a.alloc(512).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = alloc();
        let g = a.alloc(256).unwrap();
        a.free(g.id).unwrap();
        assert_eq!(a.free(g.id).unwrap_err(), AllocError::UnknownAllocation);
    }

    #[test]
    fn costs_accumulate() {
        let mut a = alloc();
        let g = a.alloc(512 * 1024).unwrap();
        assert!(g.cost > SimTime::ZERO);
        let f = a.free(g.id).unwrap();
        assert!(f > SimTime::ZERO);
        assert_eq!(a.malloc_calls, 1);
        assert_eq!(a.free_calls, 1);
        assert_eq!(a.alloc_time, g.cost + f);
    }

    #[test]
    fn zero_byte_request_still_valid() {
        let mut a = alloc();
        let g = a.alloc(0).unwrap();
        assert_eq!(g.bytes, 256);
        a.free(g.id).unwrap();
    }
}
