//! Property-based tests for the engine's trace recording: under arbitrary
//! sequences of kernels, transfers and cross-stream gates on a traced
//! [`Timeline`], the recorded trace must satisfy the structural invariants
//! the exporter and the bench gates rely on:
//!
//! * per-track spans are time-ordered and non-overlapping (each stream
//!   serializes, so its track must read as a sequence);
//! * every flow arrow's endpoints resolve to recorded spans and point
//!   forward in time;
//! * the span count per stream equals the positive-duration ops submitted
//!   to it, and every gate event that resolves to a recorded span on a
//!   *different* stream produces exactly one flow arrow;
//! * tracing observes the schedule without perturbing it: a traced and an
//!   untraced timeline replaying the same ops agree on every clock,
//!   frontier and statistic.

use std::collections::HashSet;

use proptest::prelude::*;
use sn_sim::{EngineKind, Event, SimTime, StreamId, Timeline, TraceSink};

#[derive(Debug, Clone)]
enum Op {
    /// Submit `duration_us` to stream `(index % 4)`, gated on up to two
    /// earlier events picked by (wrapped) index.
    Submit {
        stream: usize,
        duration_us: u64,
        gates: Vec<usize>,
    },
    /// Transfer `bytes` on a transfer stream (h2d, d2h, or link).
    Transfer { stream: usize, bytes: u64 },
    /// Host-side wait on an earlier event.
    Wait(usize),
    /// Advance the host clock.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..4, 0u64..40, proptest::collection::vec(0usize..64, 0..3))
            .prop_map(|(stream, duration_us, gates)| Op::Submit { stream, duration_us, gates }),
        2 => (0usize..4, 1u64..100_000).prop_map(|(stream, bytes)| Op::Transfer { stream, bytes }),
        1 => (0usize..64).prop_map(Op::Wait),
        1 => (0u64..30).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn traced_timelines_emit_valid_traces(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let sink = TraceSink::recording();
        let mut tl = Timeline::new();
        let link = tl.add_stream(EngineKind::Link);
        tl.attach_tracer(&sink, "device 0");
        let streams = [StreamId::COMPUTE, StreamId::H2D, StreamId::D2H, link];

        let mut events: Vec<Event> = Vec::new();
        let mut positive_ops = 0usize; // spans the trace must contain
        let mut expected_flows = 0usize;
        // Per stream: the end times of recorded spans, to predict which
        // gate events the tracer can resolve into flow arrows.
        let mut ends: Vec<HashSet<u64>> = vec![HashSet::new(); 4];

        for op in ops {
            match op {
                Op::Submit { stream, duration_us, gates } => {
                    let stream = streams[stream % streams.len()];
                    let gates: Vec<Event> = gates
                        .iter()
                        .filter_map(|i| events.get(i % events.len().max(1)).copied())
                        .collect();
                    if duration_us > 0 {
                        positive_ops += 1;
                        expected_flows += gates
                            .iter()
                            .filter(|g| {
                                g.stream != stream
                                    && g.done_at > SimTime::ZERO
                                    && ends[g.stream.0].contains(&g.done_at.as_ns())
                            })
                            .count();
                    }
                    let e = tl.submit_on(stream, SimTime::from_us(duration_us), &gates);
                    if duration_us > 0 {
                        ends[stream.0].insert(e.done_at.as_ns());
                    }
                    events.push(e);
                }
                Op::Transfer { stream, bytes } => {
                    let stream = streams[1 + stream % 3];
                    positive_ops += 1; // bytes >= 1 at finite bandwidth => duration > 0
                    let dma = tl.transfer_on(stream, bytes, 8.0, &[]);
                    ends[stream.0].insert(dma.event.done_at.as_ns());
                    events.push(dma.event);
                }
                Op::Wait(i) => {
                    if let Some(e) = events.get(i % events.len().max(1)) {
                        tl.wait(*e);
                    }
                }
                Op::Advance(us) => tl.advance(SimTime::from_us(us)),
            }
        }
        tl.sync_all();

        let check = sink.validate();
        prop_assert!(check.is_valid(), "invariant violations: {:?}", check.errors);
        prop_assert_eq!(check.spans, positive_ops);
        prop_assert_eq!(check.flows, expected_flows);
        prop_assert_eq!(check.tracks, 4);

        // Every flow endpoint resolves and points forward in time — checked
        // directly against the recorded data, not just via validate().
        let data = sink.data();
        for f in &data.flows {
            let from = &data.spans[f.from.0 as usize];
            let to = &data.spans[f.to.0 as usize];
            prop_assert!(from.track != to.track, "flows are cross-stream by construction");
            prop_assert!(from.end_ns <= to.start_ns);
        }

        // The exporter emits one "X" event per span and an "s"/"f" pair per
        // flow arrow.
        let json = sink.export_chrome_json();
        prop_assert_eq!(json.matches("\"ph\":\"X\"").count(), positive_ops);
        prop_assert_eq!(json.matches("\"ph\":\"s\"").count(), expected_flows);
        prop_assert_eq!(json.matches("\"ph\":\"f\"").count(), expected_flows);
    }

    #[test]
    fn untraced_timelines_behave_identically(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        // Replaying the same ops on a traced and an untraced timeline must
        // produce identical clocks, frontiers and statistics: tracing
        // observes the schedule, never perturbs it.
        let mut plain = Timeline::new();
        let link_p = plain.add_stream(EngineKind::Link);
        let sink = TraceSink::recording();
        let mut traced = Timeline::new();
        let link_t = traced.add_stream(EngineKind::Link);
        traced.attach_tracer(&sink, "device 0");

        for (tl, link) in [(&mut plain, link_p), (&mut traced, link_t)] {
            let streams = [StreamId::COMPUTE, StreamId::H2D, StreamId::D2H, link];
            let mut events: Vec<Event> = Vec::new();
            for op in &ops {
                match op {
                    Op::Submit { stream, duration_us, gates } => {
                        let stream = streams[stream % streams.len()];
                        let gates: Vec<Event> = gates
                            .iter()
                            .filter_map(|i| events.get(i % events.len().max(1)).copied())
                            .collect();
                        events.push(tl.submit_on(stream, SimTime::from_us(*duration_us), &gates));
                    }
                    Op::Transfer { stream, bytes } => {
                        let stream = streams[1 + stream % 3];
                        events.push(tl.transfer_on(stream, *bytes, 8.0, &[]).event);
                    }
                    Op::Wait(i) => {
                        if let Some(e) = events.get(i % events.len().max(1)) {
                            tl.wait(*e);
                        }
                    }
                    Op::Advance(us) => tl.advance(SimTime::from_us(*us)),
                }
            }
            tl.sync_all();
        }

        prop_assert_eq!(plain.now(), traced.now());
        let (a, b) = (plain.stats(), traced.stats());
        prop_assert_eq!(a.h2d_bytes, b.h2d_bytes);
        prop_assert_eq!(a.d2h_bytes, b.d2h_bytes);
        prop_assert_eq!(a.link_bytes, b.link_bytes);
        prop_assert_eq!(a.compute_busy, b.compute_busy);
        prop_assert_eq!(a.stall, b.stall);
        prop_assert_eq!(plain.overlap(), traced.overlap());
        prop_assert_eq!(plain.link_overlap(), traced.link_overlap());
    }
}
