//! Micro-benchmarks for the heap memory pool vs. the modelled cudaMalloc —
//! the host-side data-structure cost that Table 2 amortizes (the simulated
//! *latencies* are charged on the virtual clock; this measures the real Rust
//! data-structure work so regressions in the pool are caught).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sn_mempool::HeapPool;
use sn_sim::{CudaAllocator, DeviceAllocator, DeviceSpec};

fn alloc_free_cycle<A: DeviceAllocator>(alloc: &mut A, sizes: &[u64]) {
    let mut live = Vec::with_capacity(sizes.len());
    for &s in sizes {
        live.push(alloc.alloc(s).unwrap().id);
    }
    for id in live {
        alloc.free(id).unwrap();
    }
}

fn bench_pool(c: &mut Criterion) {
    // A training-iteration-like size mix: a few large activations, many
    // small ones.
    let sizes: Vec<u64> = (0..128)
        .map(|i| match i % 8 {
            0 => 64 << 20,
            1..=3 => 4 << 20,
            _ => 200 << 10,
        })
        .collect();

    let mut g = c.benchmark_group("alloc_free_128_tensors");
    g.bench_function("heap_pool", |b| {
        let mut pool = HeapPool::with_capacity(12 << 30);
        b.iter(|| alloc_free_cycle(black_box(&mut pool), &sizes));
    });
    g.bench_function("cuda_model", |b| {
        let mut cuda = CudaAllocator::new(&DeviceSpec::k40c());
        b.iter(|| alloc_free_cycle(black_box(&mut cuda), &sizes));
    });
    g.finish();

    c.bench_function("pool_fragmented_first_fit", |b| {
        // Leave a fragmented pool and measure allocation into holes.
        let mut pool = HeapPool::with_capacity(1 << 30);
        let ids: Vec<_> = (0..512).map(|_| pool.alloc(1 << 20).unwrap().id).collect();
        for id in ids.iter().step_by(2) {
            pool.free(*id).unwrap();
        }
        b.iter(|| {
            let g = pool.alloc(black_box(800 << 10)).unwrap();
            pool.free(g.id).unwrap();
        });
    });
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
