//! End-to-end scheduler benchmarks: the wall-clock cost of scheduling one
//! virtual training iteration (liveness + UTP + cache + recompute) — i.e.
//! the runtime's own overhead, which must stay negligible next to the
//! (simulated) kernel time it orchestrates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sn_graph::{LivenessPlan, NetCost, Route};
use sn_runtime::{Executor, Policy};
use sn_sim::DeviceSpec;

fn bench_route_and_liveness(c: &mut Criterion) {
    let net = sn_models::resnet50(16);
    c.bench_function("route_construct_resnet50", |b| {
        b.iter(|| Route::construct(black_box(&net)));
    });
    let route = Route::construct(&net);
    c.bench_function("liveness_analyze_resnet50", |b| {
        b.iter(|| {
            LivenessPlan::analyze(
                black_box(&net),
                &route,
                sn_graph::liveness::LivenessOptions::default(),
            )
        });
    });
    c.bench_function("cost_model_resnet50", |b| {
        b.iter(|| NetCost::of(black_box(&net)));
    });
}

fn bench_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("virtual_iteration");
    g.sample_size(20);
    for (name, net) in [
        ("alexnet_b128", sn_models::alexnet(128)),
        ("resnet50_b16", sn_models::resnet50(16)),
        ("inception_v4_b8", sn_models::inception_v4(8)),
    ] {
        g.bench_function(format!("superneurons_{name}"), |b| {
            let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::superneurons()).unwrap();
            b.iter(|| black_box(&mut ex).run_iteration().unwrap());
        });
        g.bench_function(format!("baseline_{name}"), |b| {
            let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::liveness_only()).unwrap();
            b.iter(|| black_box(&mut ex).run_iteration().unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_route_and_liveness, bench_iterations);
criterion_main!(benches);
