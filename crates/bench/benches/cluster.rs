//! Benchmarks for the sn-cluster scheduler: the host-side wall-clock cost of
//! admitting, placing, and simulating a multi-tenant job stream — the
//! scheduler's own overhead, which must stay negligible next to the virtual
//! time it manages.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sn_cluster::{
    synthetic_stream, ClusterSim, Fleet, PlacementPolicy, PolicyPreset, Profiler, Workload,
};
use sn_runtime::Interconnect;
use sn_sim::DeviceSpec;

const MB: u64 = 1 << 20;

fn fleet(n: usize) -> Fleet {
    Fleet::homogeneous(
        n,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    )
}

fn bench_admission_prediction(c: &mut Criterion) {
    let spec = DeviceSpec::k40c().with_dram(96 * MB);
    c.bench_function("predict_peak_cold", |b| {
        b.iter(|| {
            // A fresh profiler every time: measures the underlying simulate.
            let p = Profiler::new();
            p.profile(
                black_box(Workload::Synthetic {
                    width: 16,
                    depth: 4,
                }),
                16,
                PolicyPreset::Superneurons,
                &spec,
                spec.dram_bytes,
            )
        });
    });
    let warm = Profiler::new();
    c.bench_function("predict_peak_memoized", |b| {
        b.iter(|| {
            warm.profile(
                black_box(Workload::Synthetic {
                    width: 16,
                    depth: 4,
                }),
                16,
                PolicyPreset::Superneurons,
                &spec,
                spec.dram_bytes,
            )
        });
    });
}

fn bench_cluster_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_serve");
    g.sample_size(10);
    for (label, jobs, devices) in [("60jobs_8gpu", 60, 8), ("120jobs_16gpu", 120, 16)] {
        for placement in PlacementPolicy::ALL {
            g.bench_function(format!("{label}_{}", placement.name()), |b| {
                b.iter(|| {
                    let mut sim = ClusterSim::new(fleet(devices), placement);
                    sim.run(black_box(synthetic_stream(
                        jobs,
                        1,
                        PolicyPreset::Superneurons,
                        true,
                    )))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_admission_prediction, bench_cluster_serve);
criterion_main!(benches);
