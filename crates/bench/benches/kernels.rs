//! Micro-benchmarks for the numeric-mode tensor kernels (GEMM, im2col
//! convolution, pooling, batch-norm) — the real CPU compute substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sn_tensor::conv::{conv2d_backward, conv2d_forward, ConvParams};
use sn_tensor::gemm::sgemm;
use sn_tensor::norm::bn_forward;
use sn_tensor::pool::{maxpool_forward, PoolParams};
use sn_tensor::{Shape4, Tensor};

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::rand_uniform(Shape4::flat(n, n), 1.0, 1);
        let b = Tensor::rand_uniform(Shape4::flat(n, n), 1.0, 2);
        let mut out = vec![0.0f32; n * n];
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function(format!("sgemm_{n}x{n}x{n}"), |bench| {
            bench.iter(|| {
                sgemm(n, n, n, 1.0, a.data(), b.data(), 0.0, black_box(&mut out));
            });
        });
    }
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let p = ConvParams {
        out_channels: 16,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let input = Tensor::rand_uniform(Shape4::new(4, 8, 32, 32), 1.0, 3);
    let weight = Tensor::rand_uniform(p.weight_shape(8), 0.5, 4);
    let bias = vec![0.0f32; 16];
    c.bench_function("conv2d_forward_im2col_4x8x32x32", |b| {
        b.iter(|| conv2d_forward(black_box(&input), &weight, &bias, &p));
    });
    let gout = Tensor::rand_uniform(p.out_shape(input.shape()), 1.0, 5);
    c.bench_function("conv2d_backward_4x8x32x32", |b| {
        b.iter(|| conv2d_backward(black_box(&input), &weight, &gout, &p));
    });
}

fn bench_pool_bn(c: &mut Criterion) {
    let input = Tensor::rand_uniform(Shape4::new(8, 16, 32, 32), 1.0, 6);
    let p = PoolParams {
        kernel: 2,
        stride: 2,
        pad: 0,
    };
    c.bench_function("maxpool_forward_8x16x32x32", |b| {
        b.iter(|| maxpool_forward(black_box(&input), &p));
    });
    let gamma = vec![1.0f32; 16];
    let beta = vec![0.0f32; 16];
    c.bench_function("bn_forward_8x16x32x32", |b| {
        b.iter(|| bn_forward(black_box(&input), &gamma, &beta));
    });
}

criterion_group!(benches, bench_gemm, bench_conv, bench_pool_bn);
criterion_main!(benches);
