//! Ablation studies for the design choices DESIGN.md calls out — the knobs
//! the paper fixes (LRU, pinned staging, overlapped prefetch, a single
//! local-host tier) each get an A/B here, plus the data-parallel scaling
//! sweep the paper's §2.1 positioning implies.

use sn_models as models;
use sn_runtime::parallel::{DataParallel, Interconnect};
use sn_runtime::{CachePolicy, Executor, Policy, TierConfig};
use sn_sim::spec::GB;
use sn_sim::DeviceSpec;

use crate::table::{gb, TextTable};

/// Cache replacement policy ablation: LRU (the paper's choice) vs FIFO vs
/// MRU under memory pressure. Backward's tail-to-head reuse pattern should
/// favour LRU on traffic.
pub fn ablation_cache_policy() -> String {
    // AlexNet at a batch where the cache must evict on a shrunken device.
    let spec = DeviceSpec::k40c().with_dram(2 * GB);
    let batch = 448usize;
    let mut t = TextTable::new(vec![
        "policy",
        "PCIe traffic (GB/iter)",
        "img/s",
        "evictions",
    ]);
    for (name, cp) in [
        ("LRU (paper)", CachePolicy::Lru),
        ("FIFO", CachePolicy::Fifo),
        ("MRU", CachePolicy::Mru),
    ] {
        let net = models::alexnet(batch);
        let pol = Policy {
            cache_policy: cp,
            ..Policy::superneurons()
        };
        match Executor::new(&net, spec.clone(), pol) {
            Ok(mut ex) => {
                let _ = ex.run_iteration();
                match ex.run_iteration() {
                    Ok(r) => t.row(vec![
                        name.to_string(),
                        gb(r.h2d_bytes + r.d2h_bytes),
                        format!("{:.1}", r.imgs_per_sec(batch)),
                        format!("{}", r.counters.evictions),
                    ]),
                    Err(_) => t.row(vec![name.to_string(), "OOM".into(), "-".into(), "-".into()]),
                };
            }
            Err(_) => {
                t.row(vec![name.to_string(), "OOM".into(), "-".into(), "-".into()]);
            }
        }
    }
    format!(
        "Ablation — Tensor Cache replacement policy (AlexNet@448, 2GB pool)\n{}",
        t.render()
    )
}

/// Prefetch and pinned-staging ablations: the two transfer optimizations
/// the paper credits for hiding UTP traffic.
pub fn ablation_transfers() -> String {
    let spec = DeviceSpec::titan_xp();
    let mut t = TextTable::new(vec!["configuration", "img/s", "stall (ms/iter)"]);
    for (name, prefetch, pinned) in [
        ("prefetch + pinned (paper)", true, true),
        ("no prefetch", false, true),
        ("pageable staging", true, false),
        ("neither", false, false),
    ] {
        let net = models::resnet50(32);
        let pol = Policy {
            prefetch,
            pinned_host: pinned,
            ..Policy::superneurons_no_cache()
        };
        let mut ex = Executor::new(&net, spec.clone(), pol).unwrap();
        let _ = ex.run_iteration();
        let r = ex.run_iteration().unwrap();
        t.row(vec![
            name.to_string(),
            format!("{:.1}", r.imgs_per_sec(32)),
            format!("{:.1}", r.stall.as_ms_f64()),
        ]);
    }
    format!(
        "Ablation — transfer optimizations (ResNet50@32, eager offload active)\n{}",
        t.render()
    )
}

/// UTP tier ablation (Fig. 7): constrain the local host pool so offloads
/// spill to the peer-GPU and remote tiers.
pub fn ablation_tiers() -> String {
    let spec = DeviceSpec::k40c().with_dram(4 * GB);
    let mut t = TextTable::new(vec![
        "external pools",
        "img/s",
        "peer used (GB)",
        "local used (GB)",
        "remote used (GB)",
    ]);
    let configs: Vec<(&str, TierConfig)> = vec![
        ("local host only (paper)", TierConfig::local_only(256 << 30)),
        (
            "1GB local + peer GPU",
            TierConfig::full(8 << 30, 1 << 30, 0),
        ),
        (
            "1GB local + remote RDMA",
            TierConfig::full(0, 1 << 30, 64 << 30),
        ),
        (
            "all three tiers",
            TierConfig::full(2 << 30, 1 << 30, 64 << 30),
        ),
    ];
    for (name, tiers) in configs {
        let net = models::vgg16(48);
        // Eager offload so the UTP actually streams every conv output to
        // the external pools (the Fig. 10b protocol).
        let pol = Policy {
            tiers,
            ..Policy::superneurons_no_cache()
        };
        match Executor::new(&net, spec.clone(), pol) {
            Ok(mut ex) => {
                let _ = ex.run_iteration();
                match ex.run_iteration() {
                    Ok(r) => {
                        let (p, l, rm) = ex.dev.host.high_water();
                        t.row(vec![
                            name.to_string(),
                            format!("{:.1}", r.imgs_per_sec(48)),
                            gb(p),
                            gb(l),
                            gb(rm),
                        ]);
                    }
                    Err(e) => {
                        t.row(vec![
                            name.to_string(),
                            format!("fail: {e}"),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                        ]);
                    }
                }
            }
            Err(e) => {
                t.row(vec![
                    name.to_string(),
                    format!("fail: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    format!(
        "Ablation — Unified Tensor Pool tiers (VGG16@48, 4GB device pool)\n{}",
        t.render()
    )
}

/// Data-parallel scaling: aggregate img/s and efficiency vs GPU count,
/// PCIe vs NVLink, with and without comm/compute overlap.
pub fn ablation_data_parallel() -> String {
    let mut t = TextTable::new(vec![
        "GPUs",
        "interconnect",
        "overlap",
        "img/s",
        "efficiency",
        "allreduce (ms)",
    ]);
    for gpus in [1usize, 2, 4, 8] {
        for (icn, ic) in [
            ("PCIe", Interconnect::pcie()),
            ("NVLink", Interconnect::nvlink()),
        ] {
            for overlap in [false, true] {
                if gpus == 1 && (icn == "NVLink" || overlap) {
                    continue; // degenerate duplicates
                }
                let dp = DataParallel {
                    net_builder: Box::new(models::resnet50),
                    per_gpu_batch: 32,
                    gpus,
                    spec: DeviceSpec::titan_xp(),
                    policy: Policy::superneurons(),
                    interconnect: ic,
                    overlap,
                };
                let r = dp.run().unwrap();
                t.row(vec![
                    format!("{gpus}"),
                    icn.to_string(),
                    format!("{overlap}"),
                    format!("{:.1}", r.imgs_per_sec),
                    format!("{:.2}", r.efficiency),
                    format!("{:.1}", r.allreduce_time.as_ms_f64()),
                ]);
            }
        }
    }
    format!(
        "Ablation — data-parallel scaling (ResNet50, 32/GPU, SuperNeurons per replica)\n{}",
        t.render()
    )
}

/// All ablations.
pub fn run_ablations() -> String {
    format!(
        "{}\n{}\n{}\n{}",
        ablation_cache_policy(),
        ablation_transfers(),
        ablation_tiers(),
        ablation_data_parallel()
    )
}
