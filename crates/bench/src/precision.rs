//! The `precision` experiment: mixed precision through the whole stack,
//! measured on the transformer workload.
//!
//! Two claims of the precision refactor, checked end to end:
//!
//! 1. **Exactness** — for every GPT preset × element precision × policy
//!    preset, `MemoryPlan::peak_bytes` equals the executed
//!    `IterationReport::peak_bytes` byte-for-byte, cold and warm. The
//!    planner's alloc/fetch/offload/release sizes are dtype-exact, so the
//!    contract that holds for fp32 CNNs holds unchanged for bf16-mixed
//!    transformers.
//! 2. **Capacity** — on a fixed-DRAM device, the bf16-mixed recipe
//!    (2-byte activations/gradients, fp32 master weights) admits a strictly
//!    longer maximum sequence length than fp32 at the same batch: the
//!    memory the AMP recipe frees is real, planned capacity — not an
//!    estimate.
//!
//! Emits `BENCH_precision.json`; CI greps `all_peaks_match` and
//! `mixed_unlocks_seq`.

use sn_graph::Precision;
use sn_models as models;
use sn_runtime::session::max_feasible_param;
use sn_runtime::{plan_prediction, Executor, Policy};
use sn_sim::spec::GB;
use sn_sim::DeviceSpec;

use crate::table::{mb, TextTable};

/// One matrix cell: a GPT model × element precision × policy preset.
pub struct PrecisionRow {
    pub model: &'static str,
    pub batch: usize,
    pub seq: usize,
    pub precision: &'static str,
    pub preset: &'static str,
    pub plan_peak: u64,
    pub executed_cold: u64,
    pub executed_warm: u64,
}

impl PrecisionRow {
    pub fn matches(&self) -> bool {
        self.plan_peak == self.executed_cold && self.plan_peak == self.executed_warm
    }
}

/// The fixed-DRAM max-sequence search: fp32 vs bf16-mixed knees.
pub struct SeqUnlock {
    pub batch: usize,
    pub dram_bytes: u64,
    pub fp32_max_seq: usize,
    pub bf16_max_seq: usize,
}

impl SeqUnlock {
    /// The headline gate: mixed precision must admit strictly longer
    /// sequences than fp32 at equal DRAM.
    pub fn unlocks(&self) -> bool {
        self.bf16_max_seq > self.fp32_max_seq
    }
}

type GptBuilder = fn(usize, usize) -> sn_graph::Net;

fn matrix(quick: bool) -> Vec<(&'static str, GptBuilder, usize, usize)> {
    if quick {
        vec![("GPT-Small", models::gpt_small as GptBuilder, 2, 128)]
    } else {
        vec![
            ("GPT-Small", models::gpt_small as GptBuilder, 8, 256),
            ("GPT-Medium", models::gpt_medium, 4, 256),
        ]
    }
}

fn precisions() -> [(&'static str, Precision); 2] {
    [
        ("fp32", Precision::fp32()),
        ("bf16-mixed", Precision::bf16_mixed()),
    ]
}

fn presets() -> [(&'static str, Policy); 2] {
    [
        ("baseline", Policy::baseline()),
        ("superneurons", Policy::superneurons()),
    ]
}

/// The exactness matrix (no I/O): plan peak vs executed cold/warm peaks for
/// every GPT × precision × preset cell on the 12 GB device.
pub fn measure_matrix(quick: bool) -> Vec<PrecisionRow> {
    let spec = DeviceSpec::k40c();
    let mut rows = Vec::new();
    for (model, build, batch, seq) in matrix(quick) {
        let net = build(batch, seq);
        for (pname, precision) in precisions() {
            for (preset, policy) in presets() {
                let policy = policy.with_precision(precision);
                let plan_peak = plan_prediction(&net, &spec, policy)
                    .expect("GPT matrix fits a 12 GB device")
                    .peak_bytes;
                let mut ex = Executor::new(&net, spec.clone(), policy).unwrap();
                let cold = ex.run_iteration().unwrap().peak_bytes;
                let warm = ex.run_iteration().unwrap().peak_bytes;
                rows.push(PrecisionRow {
                    model,
                    batch,
                    seq,
                    precision: pname,
                    preset,
                    plan_peak,
                    executed_cold: cold,
                    executed_warm: warm,
                });
            }
        }
    }
    rows
}

/// The fixed-DRAM capacity search (no I/O): largest feasible GPT-Small
/// sequence length under the superneurons preset, fp32 vs bf16-mixed.
pub fn measure_unlock(quick: bool) -> SeqUnlock {
    // The ceiling sits well past the knee: the attention workspace grows
    // quadratically in `seq`, so even with offload and recomputation the
    // search always terminates far below it.
    let batch = if quick { 2 } else { 8 };
    let hi = 32_768;
    let dram = 2 * GB;
    let spec = DeviceSpec::k40c().with_dram(dram);
    let seq_knee = |precision: Precision| {
        let policy = Policy::superneurons().with_precision(precision);
        max_feasible_param(&|s| models::gpt_small(batch, s), &spec, policy, 16, hi)
    };
    SeqUnlock {
        batch,
        dram_bytes: dram,
        fp32_max_seq: seq_knee(Precision::fp32()),
        bf16_max_seq: seq_knee(Precision::bf16_mixed()),
    }
}

/// Run the experiment; also writes `BENCH_precision.json`.
pub fn precision(quick: bool) -> String {
    let rows = measure_matrix(quick);
    let unlock = measure_unlock(quick);

    let mut out = String::from(
        "precision: mixed-precision transformers — dtype-exact plan vs executed \
         peaks, and the sequence lengths bf16 unlocks at fixed DRAM\n\n",
    );
    let mut t = TextTable::new(vec![
        "model",
        "batch×seq",
        "precision",
        "preset",
        "plan peak (MB)",
        "executed cold/warm (MB)",
        "byte-identical",
    ]);
    let mut all_match = true;
    for r in &rows {
        all_match &= r.matches();
        t.row(vec![
            r.model.to_string(),
            format!("{}×{}", r.batch, r.seq),
            r.precision.to_string(),
            r.preset.to_string(),
            mb(r.plan_peak),
            format!("{} / {}", mb(r.executed_cold), mb(r.executed_warm)),
            if r.matches() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nall {} matrix cells byte-identical: {}\n",
        rows.len(),
        all_match
    ));
    out.push_str(&format!(
        "\nmax GPT-Small sequence at batch {} on a {} MB device (superneurons): \
         fp32 {} vs bf16-mixed {} — mixed unlocks longer sequences: {}\n",
        unlock.batch,
        unlock.dram_bytes >> 20,
        unlock.fp32_max_seq,
        unlock.bf16_max_seq,
        unlock.unlocks()
    ));

    let mut json_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json_rows.push(',');
        }
        json_rows.push_str(&format!(
            "{{\"model\":\"{}\",\"batch\":{},\"seq\":{},\"precision\":\"{}\",\
             \"preset\":\"{}\",\"plan_peak\":{},\"executed_cold\":{},\
             \"executed_warm\":{},\"match\":{}}}",
            r.model,
            r.batch,
            r.seq,
            r.precision,
            r.preset,
            r.plan_peak,
            r.executed_cold,
            r.executed_warm,
            r.matches()
        ));
    }
    let json = format!(
        "{{\"experiment\":\"precision\",\"all_peaks_match\":{all_match},\
         \"mixed_unlocks_seq\":{},\
         \"rows\":[{json_rows}],\
         \"max_seq\":{{\"batch\":{},\"dram_bytes\":{},\"fp32\":{},\"bf16\":{}}}}}",
        unlock.unlocks(),
        unlock.batch,
        unlock.dram_bytes,
        unlock.fp32_max_seq,
        unlock.bf16_max_seq,
    );
    match std::fs::write("BENCH_precision.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_precision.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_precision.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_peaks_are_byte_identical_at_both_precisions() {
        // The acceptance criterion: plan peak == executed peak byte-exact
        // for the transformer workload under fp32 AND bf16-mixed, across
        // the preset ladder endpoints.
        for r in measure_matrix(true) {
            assert!(
                r.matches(),
                "{} {}×{} {} under {}: plan {} vs executed {}/{}",
                r.model,
                r.batch,
                r.seq,
                r.precision,
                r.preset,
                r.plan_peak,
                r.executed_cold,
                r.executed_warm
            );
        }
    }

    #[test]
    fn bf16_shrinks_the_planned_peak() {
        // Same cell, halved activation/gradient bytes: the planned peak
        // must strictly shrink (weights stay fp32, so not by a full 2x).
        let rows = measure_matrix(true);
        let peak = |prec: &str, preset: &str| {
            rows.iter()
                .find(|r| r.precision == prec && r.preset == preset)
                .map(|r| r.plan_peak)
                .unwrap()
        };
        for preset in ["baseline", "superneurons"] {
            let fp32 = peak("fp32", preset);
            let bf16 = peak("bf16-mixed", preset);
            assert!(
                bf16 < fp32,
                "{preset}: bf16 peak {bf16} not below fp32 peak {fp32}"
            );
            assert!(
                2 * bf16 > fp32,
                "{preset}: bf16 peak {bf16} halved more than activations alone allow"
            );
        }
    }

    #[test]
    fn mixed_precision_unlocks_longer_sequences() {
        let u = measure_unlock(true);
        assert!(u.fp32_max_seq > 0, "fp32 must fit at the search floor");
        assert!(
            u.unlocks(),
            "bf16 max seq {} must exceed fp32 max seq {}",
            u.bf16_max_seq,
            u.fp32_max_seq
        );
    }
}
