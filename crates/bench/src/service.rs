//! The serving-at-scale experiment: the indexed event loop against the
//! retained reference loop, and the open-loop regimes only the indexed
//! loop can reach.
//!
//! Four sections, each a gate recorded in `BENCH_service.json`:
//!
//! 1. **Differential** — `run()` (indexed) vs `run_reference()` on the same
//!    materialized stream must produce [`bit_identical`] reports — on the
//!    8-device bench fleet and on a prefix of the 64-device throughput
//!    stream — and the streaming entry point must count the same events
//!    (`reports_identical`).
//! 2. **Throughput** — both loops replay the same Poisson stream; the
//!    indexed loop must process ≥10x the reference's events/sec
//!    (`events_per_sec_ok`; vacuous on <2 hardware threads, where the
//!    measured ratio on a fully contended core is noise — recorded as
//!    `events_vacuous`, the `serial_vacuous` convention from the compile
//!    experiment).
//! 3. **Million events** — a Poisson stream sized past 10^6 scheduling
//!    events runs to completion through `run_stream`, with the live-job
//!    slab high-water proving memory tracked concurrency, not stream
//!    length (`million_event_run`).
//! 4. **Load sweep** — offered load ρ → 1 per admission preset, with
//!    p50/p99/p999 latency per cell (`tail_latency_recorded`).
//!
//! [`bit_identical`]: sn_cluster::ClusterReport::bit_identical

use std::time::Instant;

use sn_cluster::{
    collect_stream, synthetic_stream, ClusterSim, Fleet, PlacementPolicy, PoissonStream,
    PolicyPreset, ReplayStream, ServiceReport,
};
use sn_runtime::Interconnect;
use sn_sim::{DeviceSpec, SimTime};

use crate::table::TextTable;

const MB: u64 = 1 << 20;

/// Same fleet as the `cluster` experiment: 8 small-DRAM devices, memory the
/// contended resource. Used for the differential gate and the load sweep.
fn fleet() -> Fleet {
    Fleet::homogeneous(
        8,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    )
}

/// The serving fleet for the throughput and million-event sections: 64
/// devices. Scale matters for the comparison's honesty — the reference
/// loop re-derives *every* running gang's projection at *every* event,
/// while the indexed loop touches only the gangs on devices whose tenant
/// count changed, so the asymptotic gap between them is only visible when
/// hundreds of gangs run concurrently.
fn serving_fleet() -> Fleet {
    Fleet::homogeneous(
        64,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    )
}

/// The ≥10x events/sec gate, vacuous on boxes without at least two
/// hardware threads (one fully contended core times both loops against
/// the whole OS; the ratio is noise). Returns `(ok, vacuous)`.
fn events_gate(speedup: f64, hw_threads: usize) -> (bool, bool) {
    let vacuous = hw_threads < 2;
    (vacuous || speedup >= 10.0, vacuous)
}

/// Estimate the gap at which offered load saturates the fleet (ρ = 1):
/// probe an uncontended stream (gap far above any service time) and take
/// the measured busy integral per completed job. Latency alone would
/// undercount — a 4-replica gang occupies four devices while its latency
/// counts once — so the device-seconds actually consumed are what set the
/// critical arrival rate: gap₁ = busy_ns / (completed × devices).
fn critical_gap_ns(fleet: &Fleet, preset: PolicyPreset) -> f64 {
    let mut probe = PoissonStream::new(300, 11, SimTime::from_ms(50), preset);
    let svc = ClusterSim::new(fleet.clone(), PlacementPolicy::BestFit).run_stream(&mut probe);
    let devices = fleet.len() as f64;
    let busy_ns = svc.compute_utilization * svc.makespan.0 as f64 * devices;
    (busy_ns / (svc.completed.max(1) as f64 * devices)).max(1.0)
}

fn run_poisson(
    fleet: &Fleet,
    n: u64,
    seed: u64,
    gap: SimTime,
    preset: PolicyPreset,
) -> ServiceReport {
    let mut stream = PoissonStream::new(n, seed, gap, preset);
    ClusterSim::new(fleet.clone(), PlacementPolicy::BestFit).run_stream(&mut stream)
}

/// Run the experiment; writes `BENCH_service.json` into the current
/// directory.
pub fn service(quick: bool) -> String {
    let hw_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str(&format!(
        "service: indexed event loop vs reference, open-loop Poisson serving \
         ({} hardware threads)\n\n",
        hw_threads
    ));

    // ---- 1. differential gate -------------------------------------------
    let diff_jobs = if quick { 40 } else { 120 };
    let arrivals = synthetic_stream(diff_jobs, 1, PolicyPreset::Superneurons, true);
    let indexed = ClusterSim::new(fleet(), PlacementPolicy::BestFit).run(arrivals.clone());
    let reference =
        ClusterSim::new(fleet(), PlacementPolicy::BestFit).run_reference(arrivals.clone());
    let bit_identical = indexed.bit_identical(&reference);
    let mut replay = ReplayStream::new(arrivals);
    let streamed = ClusterSim::new(fleet(), PlacementPolicy::BestFit).run_stream(&mut replay);
    let events_match = streamed.events as usize == indexed.trace.len();
    let reports_identical = bit_identical && events_match;
    out.push_str(&format!(
        "differential: {diff_jobs} jobs — bit_identical {bit_identical}, \
         stream events match trace {events_match}\n"
    ));

    // ---- 2. events/sec: indexed vs reference on one Poisson stream ------
    // On the 64-device serving fleet: memory admits many tenants per
    // device, so hundreds of gangs run concurrently — the regime the
    // indexed loop was built for, and the one where the reference loop's
    // every-gang-every-event accounting actually hurts.
    let tp_jobs: u64 = if quick { 5_000 } else { 100_000 };
    let serving = serving_fleet();
    let sn_critical = critical_gap_ns(&serving, PolicyPreset::Superneurons);
    // Nominal offered load 0.7 of the no-load capacity estimate: enough
    // contention for deep tenancy, while the queue stays bounded so the
    // reference finishes in reasonable wall time.
    let tp_gap = SimTime((sn_critical / 0.7) as u64);
    let tp_arrivals = collect_stream(&mut PoissonStream::new(
        tp_jobs,
        3,
        tp_gap,
        PolicyPreset::Superneurons,
    ));

    // Bit-identity on the gate fleet itself: a prefix of the measured
    // stream through both loops (the full 100k would double the reference
    // wall time just to re-check what the prefix already pins).
    let pre_n = tp_arrivals.len().min(2_000);
    let prefix = tp_arrivals[..pre_n].to_vec();
    let pre_indexed =
        ClusterSim::new(serving.clone(), PlacementPolicy::BestFit).run(prefix.clone());
    let pre_reference =
        ClusterSim::new(serving.clone(), PlacementPolicy::BestFit).run_reference(prefix);
    let serving_bit_identical = pre_indexed.bit_identical(&pre_reference);
    let reports_identical = reports_identical && serving_bit_identical;
    out.push_str(&format!(
        "serving-fleet differential: {pre_n}-job prefix on 64 devices — \
         bit_identical {serving_bit_identical}\n"
    ));

    let t0 = Instant::now();
    let ref_report = ClusterSim::new(serving.clone(), PlacementPolicy::BestFit)
        .run_reference(tp_arrivals.clone());
    let reference_ns = t0.elapsed().as_nanos().max(1) as u64;

    let mut tp_stream = ReplayStream::new(tp_arrivals);
    let t1 = Instant::now();
    let tp_svc =
        ClusterSim::new(serving.clone(), PlacementPolicy::BestFit).run_stream(&mut tp_stream);
    let indexed_ns = t1.elapsed().as_nanos().max(1) as u64;

    // Both loops process the same event sequence (the differential gate
    // pins that), so one event count divides both wall times.
    let events = ref_report.trace.len() as u64;
    let ref_eps = events as f64 / (reference_ns as f64 / 1e9);
    let idx_eps = events as f64 / (indexed_ns as f64 / 1e9);
    let speedup = reference_ns as f64 / indexed_ns as f64;
    let (events_per_sec_ok, events_vacuous) = events_gate(speedup, hw_threads);
    let throughput_events_match = tp_svc.events == events;
    out.push_str(&format!(
        "\nthroughput: {tp_jobs} Poisson jobs / {events} events\n  \
         reference {:.0} events/s ({:.2} s)   indexed {:.0} events/s ({:.2} s)   \
         speedup {speedup:.1}x\n  \
         events_per_sec_ok {events_per_sec_ok} (≥10x, vacuous on <2 threads: {events_vacuous})\n",
        ref_eps,
        reference_ns as f64 / 1e9,
        idx_eps,
        indexed_ns as f64 / 1e9,
    ));

    // ---- 3. the million-event open-loop run -----------------------------
    // Each admitted job is ≥3 events (arrive/admit/complete), so 350k jobs
    // clear 10^6 events with margin. Quick mode shrinks the stream and the
    // gate is reported against what actually ran.
    let m_jobs: u64 = if quick { 20_000 } else { 350_000 };
    let t2 = Instant::now();
    let m_svc = run_poisson(&serving, m_jobs, 5, tp_gap, PolicyPreset::Superneurons);
    let m_wall_ns = t2.elapsed().as_nanos().max(1) as u64;
    let million_event_run = m_svc.events >= 1_000_000 && m_svc.submitted == m_jobs;
    out.push_str(&format!(
        "\nmillion-event run: {m_jobs} jobs → {} events in {:.2} s \
         ({:.0} events/s), peak live slots {} (vs {} submitted)\n  \
         million_event_run {million_event_run}{}\n",
        m_svc.events,
        m_wall_ns as f64 / 1e9,
        m_svc.events as f64 / (m_wall_ns as f64 / 1e9),
        m_svc.peak_live_jobs,
        m_svc.submitted,
        if quick {
            " (quick: stream truncated)"
        } else {
            ""
        },
    ));

    // ---- 4. load sweep: ρ → 1 per preset --------------------------------
    let sweep_jobs: u64 = if quick { 1_500 } else { 20_000 };
    let rhos = [0.5, 0.8, 0.95, 0.99];
    let presets = [PolicyPreset::Baseline, PolicyPreset::Superneurons];
    let mut t = TextTable::new(vec![
        "preset",
        "rho",
        "gap (us)",
        "completed",
        "rejected",
        "p50 (ms)",
        "p99 (ms)",
        "p999 (ms)",
        "queue (ms)",
        "compute util",
    ]);
    let mut sweep_rows = String::new();
    let mut tail_latency_recorded = true;
    let sweep_fleet = fleet();
    for preset in presets {
        let crit = critical_gap_ns(&sweep_fleet, preset);
        for (i, rho) in rhos.iter().enumerate() {
            let gap = SimTime((crit / rho) as u64);
            let svc = run_poisson(&sweep_fleet, sweep_jobs, 7 + i as u64, gap, preset);
            let tails_ok = svc.completed > 0
                && svc.p999_latency >= svc.p99_latency
                && svc.p99_latency >= svc.p50_latency
                && svc.p999_latency > SimTime::ZERO;
            tail_latency_recorded &= tails_ok;
            t.row(vec![
                preset.name().to_string(),
                format!("{rho:.2}"),
                format!("{:.0}", gap.0 as f64 / 1e3),
                svc.completed.to_string(),
                svc.rejected.to_string(),
                format!("{:.2}", svc.p50_latency.as_ms_f64()),
                format!("{:.2}", svc.p99_latency.as_ms_f64()),
                format!("{:.2}", svc.p999_latency.as_ms_f64()),
                format!("{:.2}", svc.mean_queueing.as_ms_f64()),
                format!("{:.1}%", 100.0 * svc.compute_utilization),
            ]);
            if !sweep_rows.is_empty() {
                sweep_rows.push(',');
            }
            sweep_rows.push_str(&format!(
                "{{\"preset\":\"{}\",\"rho\":{rho},\"gap_ns\":{},\"report\":{}}}",
                preset.name(),
                gap.0,
                svc.to_json()
            ));
        }
    }
    out.push_str(&format!(
        "\nload sweep: {sweep_jobs} Poisson jobs per cell, gap = critical_gap/rho\n"
    ));
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ntail_latency_recorded {tail_latency_recorded}\n"
    ));

    let json = format!(
        "{{\"experiment\":\"service\",\"quick\":{quick},\"hw_threads\":{hw_threads},\
         \"differential\":{{\"jobs\":{diff_jobs},\"bit_identical\":{bit_identical},\
         \"events_match\":{events_match},\"reports_identical\":{reports_identical}}},\
         \"throughput\":{{\"jobs\":{tp_jobs},\"events\":{events},\
         \"events_match\":{throughput_events_match},\
         \"reference_ns\":{reference_ns},\"indexed_ns\":{indexed_ns},\
         \"reference_events_per_sec\":{ref_eps:.1},\"indexed_events_per_sec\":{idx_eps:.1},\
         \"speedup\":{speedup:.4},\"events_per_sec_ok\":{events_per_sec_ok},\
         \"events_vacuous\":{events_vacuous}}},\
         \"million\":{{\"jobs\":{m_jobs},\"events\":{},\"completed\":{},\"rejected\":{},\
         \"peak_live_jobs\":{},\"wall_ns\":{m_wall_ns},\"million_event_run\":{million_event_run}}},\
         \"sweep\":{{\"jobs_per_cell\":{sweep_jobs},\
         \"tail_latency_recorded\":{tail_latency_recorded},\"rows\":[{sweep_rows}]}}}}",
        m_svc.events, m_svc.completed, m_svc.rejected, m_svc.peak_live_jobs,
    );
    match std::fs::write("BENCH_service.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_service.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_service.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_loop_matches_reference_on_the_bench_fleet() {
        let arrivals = synthetic_stream(30, 1, PolicyPreset::Superneurons, true);
        let indexed = ClusterSim::new(fleet(), PlacementPolicy::BestFit).run(arrivals.clone());
        let reference = ClusterSim::new(fleet(), PlacementPolicy::BestFit).run_reference(arrivals);
        assert!(indexed.bit_identical(&reference));
    }

    #[test]
    fn events_gate_requires_10x_unless_single_core() {
        assert_eq!(events_gate(12.0, 8), (true, false));
        assert_eq!(events_gate(4.0, 8), (false, false));
        assert_eq!(events_gate(0.5, 1), (true, true));
    }

    #[test]
    fn critical_gap_is_positive_and_finite() {
        let g = critical_gap_ns(&fleet(), PolicyPreset::Superneurons);
        assert!(g >= 1.0 && g.is_finite());
    }

    #[test]
    fn load_sweep_latency_grows_with_offered_load() {
        let crit = critical_gap_ns(&fleet(), PolicyPreset::Superneurons);
        let light = run_poisson(
            &fleet(),
            400,
            7,
            SimTime((crit / 0.3) as u64),
            PolicyPreset::Superneurons,
        );
        let heavy = run_poisson(
            &fleet(),
            400,
            7,
            SimTime((crit / 0.99).max(1.0) as u64),
            PolicyPreset::Superneurons,
        );
        assert!(
            heavy.mean_queueing >= light.mean_queueing,
            "queueing must not shrink as rho rises ({:?} vs {:?})",
            heavy.mean_queueing,
            light.mean_queueing
        );
    }
}
