//! The `tune` experiment: the closed planner loop, measured.
//!
//! Four claims of the policy-autotuning pass, checked end to end over a
//! matrix of CNNs + a transformer × devices × replica counts:
//!
//! 1. **Tuned is never worse** — on every matrix point the autotuned
//!    policy's measured warm step time is ≤ the best hand preset's, and on
//!    at least three points (one in quick mode) it is *strictly* better:
//!    the search has real levers (prefetch depth, the peer-GPU tier table,
//!    gang bucket sizing) the hand presets don't pull.
//! 2. **Peaks are exact** — every tuned winner's executed peak over a
//!    cold + warm iteration equals its compiled plan peak byte-for-byte.
//!    Tuning never trades away the planner's exactness contract.
//! 3. **Seeded determinism** — re-running every search with a different
//!    `par_map` worker count reproduces the identical `TunedPolicy` and
//!    the identical rendered trace (compared line by line, plus the
//!    FxHash trace digest).
//! 4. **Metrics consistency** — each search's feasibility evaluations equal
//!    the plan-memo lookups it performed (`memo_lookups == evals`, per
//!    run), and the `tune.*` registry counters advance by exactly the sum
//!    over all runs. The registry snapshot is embedded in the artifact.
//!
//! The worker-count re-runs double as the parallel measurement: with ≥4
//! hardware threads the multi-worker sweeps must beat single-worker by
//! more than 1.2x (below that the speedup is reported but not required —
//! there is nothing to fan out onto).
//!
//! Emits `BENCH_tune.json`; CI greps `tuned_no_worse`, `all_peaks_match`
//! and `search_deterministic`.

use sn_graph::Net;
use sn_models as models;
use sn_runtime::tune::{search, SearchOutcome, TuneConfig};
use sn_runtime::{plan, Interconnect};
use sn_sim::spec::GB;
use sn_sim::DeviceSpec;

use crate::table::TextTable;

/// One matrix point: a network on a device at a gang size.
struct Point {
    label: String,
    net: Net,
    spec: DeviceSpec,
    replicas: usize,
    interconnect: Interconnect,
}

/// The tuning matrix. Full mode spans both evaluation CNNs, the
/// transformer workload, both device models, gangs of 1 and 2, and a
/// DRAM-constrained point where the search must work against a tight
/// budget rather than a comfortable one.
fn matrix(quick: bool) -> Vec<Point> {
    let mut pts = vec![
        Point {
            label: "vgg16@16 k40c x1".into(),
            net: models::vgg16(16),
            spec: DeviceSpec::k40c(),
            replicas: 1,
            interconnect: Interconnect::pcie(),
        },
        Point {
            label: "resnet50@16 titan x2 nvlink".into(),
            net: models::resnet50(16),
            spec: DeviceSpec::titan_xp(),
            replicas: 2,
            interconnect: Interconnect::nvlink(),
        },
        Point {
            label: "gpt_small@2s128 titan x1".into(),
            net: models::gpt_small(2, 128),
            spec: DeviceSpec::titan_xp(),
            replicas: 1,
            interconnect: Interconnect::pcie(),
        },
    ];
    if !quick {
        pts.push(Point {
            label: "vgg16@16 titan x2 pcie".into(),
            net: models::vgg16(16),
            spec: DeviceSpec::titan_xp(),
            replicas: 2,
            interconnect: Interconnect::pcie(),
        });
        pts.push(Point {
            label: "resnet50@16 k40c x1".into(),
            net: models::resnet50(16),
            spec: DeviceSpec::k40c(),
            replicas: 1,
            interconnect: Interconnect::pcie(),
        });
        pts.push(Point {
            label: "gpt_small@8s256 titan x1".into(),
            net: models::gpt_small(8, 256),
            spec: DeviceSpec::titan_xp(),
            replicas: 1,
            interconnect: Interconnect::pcie(),
        });
        pts.push(Point {
            label: "vgg16@24 k40c(4GB) x1".into(),
            net: models::vgg16(24),
            spec: DeviceSpec::k40c().with_dram(4 * GB),
            replicas: 1,
            interconnect: Interconnect::pcie(),
        });
    }
    pts
}

/// One tuned matrix point with its determinism re-run.
pub struct TunePoint {
    pub label: String,
    pub replicas: usize,
    /// The multi-worker search (workers = hardware parallelism).
    pub outcome: SearchOutcome,
    /// Same seed, workers pinned to 1 — must reproduce `outcome` exactly.
    pub rerun: SearchOutcome,
}

impl TunePoint {
    pub fn strict_win(&self) -> bool {
        self.outcome.tuned.step_time < self.outcome.tuned.hand_step_time
    }

    pub fn no_worse(&self) -> bool {
        self.outcome.tuned.step_time <= self.outcome.tuned.hand_step_time
    }

    pub fn peaks_match(&self) -> bool {
        self.outcome.tuned.plan_peak_bytes == self.outcome.tuned.executed_peak_bytes
            && self.rerun.tuned.plan_peak_bytes == self.rerun.tuned.executed_peak_bytes
    }

    pub fn deterministic(&self) -> bool {
        self.outcome.tuned == self.rerun.tuned && self.outcome.trace == self.rerun.trace
    }

    /// Every feasibility evaluation is exactly one plan-memo lookup, in
    /// both runs.
    pub fn metrics_consistent(&self) -> bool {
        self.outcome.memo_lookups == self.outcome.tuned.evals
            && self.rerun.memo_lookups == self.rerun.tuned.evals
    }
}

pub struct TuneReport {
    pub points: Vec<TunePoint>,
    pub threads: usize,
    /// `tune.evals` registry counter delta across the whole experiment.
    pub evals_delta: u64,
    /// `tune.memo_lookups` registry counter delta across the experiment.
    pub lookups_delta: u64,
    /// Strict wins required for `tuned_no_worse` (3, capped by matrix size
    /// in quick mode).
    pub strict_required: usize,
}

impl TuneReport {
    pub fn strict_wins(&self) -> usize {
        self.points.iter().filter(|p| p.strict_win()).count()
    }

    /// Gate 1: ≤ the best hand preset everywhere, strictly better on
    /// enough points to prove the search pulls real levers.
    pub fn tuned_no_worse(&self) -> bool {
        self.points.iter().all(|p| p.no_worse()) && self.strict_wins() >= self.strict_required
    }

    /// Gate 2: executed peak == plan peak, byte-exact, every run.
    pub fn all_peaks_match(&self) -> bool {
        self.points.iter().all(|p| p.peaks_match())
    }

    /// Gate 3: same seed ⇒ bit-identical outcome across worker counts.
    pub fn search_deterministic(&self) -> bool {
        self.points.iter().all(|p| p.deterministic())
    }

    /// Gate 4: per-run `memo_lookups == evals`, and the registry counters
    /// advanced by exactly the evaluations these searches performed.
    pub fn metrics_consistent(&self) -> bool {
        let spent: u64 = self
            .points
            .iter()
            .map(|p| p.outcome.tuned.evals + p.rerun.tuned.evals)
            .sum();
        self.points.iter().all(|p| p.metrics_consistent())
            && self.evals_delta == spent
            && self.lookups_delta == spent
    }

    pub fn serial_ns(&self) -> u128 {
        self.points.iter().map(|p| p.rerun.wall.as_nanos()).sum()
    }

    pub fn parallel_ns(&self) -> u128 {
        self.points.iter().map(|p| p.outcome.wall.as_nanos()).sum()
    }

    pub fn parallel_speedup(&self) -> f64 {
        self.serial_ns() as f64 / self.parallel_ns().max(1) as f64
    }

    /// The >1.2x bar only applies where there are threads to fan out onto.
    pub fn parallel_ok(&self) -> bool {
        self.parallel_vacuous() || self.parallel_speedup() > 1.2
    }

    pub fn parallel_vacuous(&self) -> bool {
        self.threads < 4
    }
}

/// Compact human-readable signature of a tuned winner for the table/JSON.
fn describe(t: &sn_runtime::TunedPolicy) -> String {
    let p = &t.policy;
    format!(
        "pfd={} eo={} rc={:?} cp={:?} ws={:?} tiers={} bkt={}M",
        p.prefetch_depth,
        p.eager_offload as u8,
        p.recompute,
        p.cache_policy,
        p.workspace,
        if p.tiers == sn_runtime::TierConfig::default() {
            "local"
        } else {
            "full"
        },
        t.bucket_bytes >> 20,
    )
}

/// Run the measurements (no I/O).
pub fn measure(quick: bool) -> TuneReport {
    let samples = if quick { 10 } else { 24 };
    let pts = matrix(quick);
    let strict_required = 3.min(pts.len().saturating_sub(1)).max(1);
    let before = sn_telemetry::global().snapshot();
    let mut points = Vec::new();
    for (i, pt) in pts.into_iter().enumerate() {
        let cfg = TuneConfig::new(pt.replicas, pt.interconnect)
            .with_seed(0xB0_5EED ^ (i as u64))
            .with_samples(samples);
        // Both runs start from a cold plan memo so their wall times are
        // comparable (the determinism contract itself is memo-independent).
        plan::clear_plan_memo();
        let outcome = search(&pt.net, &pt.spec, &cfg).expect("matrix point must tune");
        plan::clear_plan_memo();
        let rerun = search(&pt.net, &pt.spec, &cfg.with_workers(1)).expect("rerun must tune");
        points.push(TunePoint {
            label: pt.label,
            replicas: pt.replicas,
            outcome,
            rerun,
        });
    }
    let after = sn_telemetry::global().snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    TuneReport {
        points,
        threads: rayon::current_num_threads(),
        evals_delta: delta("tune.evals"),
        lookups_delta: delta("tune.memo_lookups"),
        strict_required,
    }
}

/// Run the experiment; also writes `BENCH_tune.json`.
pub fn tune(quick: bool) -> String {
    let r = measure(quick);

    let mut out = String::from(
        "tune: seeded policy autotuning over the memoized compiler — tuned \
         vs best hand preset, peak exactness, worker-count determinism\n\n",
    );
    let mut t = TextTable::new(vec![
        "point",
        "hand best",
        "tuned",
        "speedup",
        "strict",
        "peaks",
        "det",
        "winner",
    ]);
    for p in &r.points {
        let tu = &p.outcome.tuned;
        t.row(vec![
            p.label.clone(),
            format!("{} {:.3} ms", tu.hand_name, tu.hand_step_time.as_ms_f64()),
            format!("{:.3} ms", tu.step_time.as_ms_f64()),
            format!(
                "{:.3}x",
                tu.hand_step_time.as_ns() as f64 / tu.step_time.as_ns().max(1) as f64
            ),
            if p.strict_win() { "yes" } else { "tie" }.into(),
            if p.peaks_match() { "exact" } else { "DRIFT" }.into(),
            if p.deterministic() { "yes" } else { "NO" }.into(),
            describe(tu),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nstrict wins {}/{} (need {}) | tuned_no_worse: {} | all_peaks_match: {} | \
         search_deterministic: {} | metrics_consistent: {} | parallel ({} threads, \
         vacuous <4): {} ({:.2}x)\n",
        r.strict_wins(),
        r.points.len(),
        r.strict_required,
        r.tuned_no_worse(),
        r.all_peaks_match(),
        r.search_deterministic(),
        r.metrics_consistent(),
        r.threads,
        r.parallel_ok(),
        r.parallel_speedup(),
    ));

    let rows: Vec<String> = r
        .points
        .iter()
        .map(|p| {
            let tu = &p.outcome.tuned;
            format!(
                "{{\"label\":\"{}\",\"replicas\":{},\"hand\":\"{}\",\"hand_ns\":{},\
                 \"tuned_ns\":{},\"plan_peak_bytes\":{},\"executed_peak_bytes\":{},\
                 \"policy\":\"{}\",\"seed\":{},\"evals\":{},\"pruned\":{},\
                 \"trace_digest\":{},\"strict\":{},\"peaks_match\":{},\
                 \"deterministic\":{},\"metrics_consistent\":{}}}",
                p.label,
                p.replicas,
                tu.hand_name,
                tu.hand_step_time.as_ns(),
                tu.step_time.as_ns(),
                tu.plan_peak_bytes,
                tu.executed_peak_bytes,
                describe(tu),
                tu.seed,
                tu.evals,
                tu.pruned,
                tu.trace_digest,
                p.strict_win(),
                p.peaks_match(),
                p.deterministic(),
                p.metrics_consistent(),
            )
        })
        .collect();
    let metrics = sn_telemetry::global().snapshot();
    let snap = |n: &str| metrics.counter(n).unwrap_or(0);
    let wall = metrics
        .histogram("tune.search_wall_ns")
        .map(|h| {
            format!(
                "{{\"count\":{},\"sum\":{},\"mean\":{:.0}}}",
                h.count,
                h.sum,
                h.mean()
            )
        })
        .unwrap_or_else(|| "null".into());
    let json = format!(
        "{{\"experiment\":\"tune\",\"points\":{},\"threads\":{},\
         \"matrix\":[{}],\
         \"strict_wins\":{},\"strict_required\":{},\
         \"tuned_no_worse\":{},\"all_peaks_match\":{},\"search_deterministic\":{},\
         \"metrics\":{{\"tune.evals\":{},\"tune.pruned\":{},\"tune.memo_hits\":{},\
         \"tune.memo_lookups\":{},\"tune.search_wall_ns\":{},\
         \"evals_delta\":{},\"lookups_delta\":{}}},\
         \"metrics_consistent\":{},\
         \"parallel\":{{\"serial_ns\":{},\"parallel_ns\":{},\"speedup\":{:.4}}},\
         \"parallel_ok\":{},\"parallel_vacuous\":{}}}",
        r.points.len(),
        r.threads,
        rows.join(","),
        r.strict_wins(),
        r.strict_required,
        r.tuned_no_worse(),
        r.all_peaks_match(),
        r.search_deterministic(),
        snap("tune.evals"),
        snap("tune.pruned"),
        snap("tune.memo_hits"),
        snap("tune.memo_lookups"),
        wall,
        r.evals_delta,
        r.lookups_delta,
        r.metrics_consistent(),
        r.serial_ns(),
        r.parallel_ns(),
        r.parallel_speedup(),
        r.parallel_ok(),
        r.parallel_vacuous(),
    );
    match std::fs::write("BENCH_tune.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_tune.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_tune.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_beats_hands_with_exact_peaks_and_deterministic_searches() {
        let r = measure(true);
        assert!(
            r.tuned_no_worse(),
            "tuned lost to a hand preset (strict wins {}/{})",
            r.strict_wins(),
            r.strict_required
        );
        assert!(r.all_peaks_match(), "a tuned plan's executed peak drifted");
        assert!(r.search_deterministic(), "worker count changed a search");
        assert!(
            r.metrics_consistent(),
            "evals {} / lookups {} registry deltas disagree with the searches",
            r.evals_delta,
            r.lookups_delta
        );
    }
}
