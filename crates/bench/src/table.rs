//! Minimal fixed-width table formatting for experiment reports.

/// A simple text table: header row + data rows, column-aligned.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format bytes as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Format bytes as GB with two decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["net", "imgs/s"]);
        t.row(vec!["AlexNet", "401.6"]);
        t.row(vec!["ResNet152", "13.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("net"));
        assert!(lines[2].ends_with("401.6"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(mb(2_189_437_000 / 1000), "2.19");
        assert_eq!(gb(44_300_000_000), "44.30");
    }
}
