//! The `compile` experiment: plan compilation as the fast path, measured.
//!
//! Four claims of the planner-performance pass, checked end to end:
//!
//! 1. **Byte identity** — the optimized planner (indexed pool, O(1)
//!    intrusive cache, flat op stream, shared analyses) produces plans
//!    byte-identical to the retained pre-change reference implementation
//!    (`compile_reference`): same peaks, same rendered op streams.
//! 2. **Serial throughput** — compiling the VGG16/ResNet50 × preset matrix
//!    through the optimized planner is ≥3x the reference's plans/sec in
//!    the steady state (plan memo cold — every cell compiles a fresh plan
//!    — with the shared graph analyses warm, the regime of an admission
//!    server whose nets are known; the fully-cold first-contact row is
//!    also reported). The baseline row is *measured*, not remembered —
//!    the old walk is kept verbatim in the tree, and it has no analysis
//!    sharing to warm: re-deriving them inside every compile is part of
//!    what it costs.
//! 3. **Memoized hits** — a repeated `(net, policy, device)` compilation
//!    through the plan memo returns the shared `Arc` ≥10x faster than the
//!    cold compile it replaces.
//! 4. **Parallel sweeps** — compiling the matrix over the rayon shim's
//!    worker pool scales; with ≥4 hardware threads the sweep must beat
//!    serial by >1.5x (on fewer threads the speedup is reported but not
//!    required — there is nothing to scale onto).
//!
//! Emits `BENCH_compile.json`; CI greps `byte_identical`, `serial_ok`,
//! `memo_ok` and `parallel_ok`.

use std::time::Instant;

use sn_graph::Net;
use sn_models as models;
use sn_runtime::{plan, Policy};
use sn_sim::DeviceSpec;

use crate::table::TextTable;

/// One compile cell: a model × preset.
struct Cell {
    model: &'static str,
    net: Net,
    preset: &'static str,
    policy: Policy,
}

fn presets() -> [(&'static str, Policy); 5] {
    [
        ("baseline", Policy::baseline()),
        ("liveness_only", Policy::liveness_only()),
        ("liveness_offload", Policy::liveness_offload()),
        ("full_memory", Policy::full_memory()),
        ("superneurons", Policy::superneurons()),
    ]
}

/// The tentpole matrix: the two mid-size evaluation networks × the full
/// preset ladder (the same shape admission ladders sweep).
fn cells(quick: bool) -> Vec<Cell> {
    let nets: Vec<(&'static str, models::NetBuilder, usize)> = if quick {
        vec![("VGG16", models::vgg16 as models::NetBuilder, 16)]
    } else {
        vec![
            ("VGG16", models::vgg16 as models::NetBuilder, 16),
            ("ResNet50", models::resnet50, 16),
        ]
    };
    let mut out = Vec::new();
    for (model, build, batch) in nets {
        let net = build(batch);
        for (preset, policy) in presets() {
            out.push(Cell {
                model,
                net: net.clone(),
                preset,
                policy,
            });
        }
    }
    out
}

/// Best-of-`reps` wall time of `f` in nanoseconds, with an untimed `setup`
/// before every repetition (cache clearing must not count against the
/// measured path).
fn best_of<S: FnMut(), F: FnMut()>(reps: usize, mut setup: S, mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        setup();
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

pub struct CompileReport {
    pub cells: usize,
    pub threads: usize,
    pub byte_identical: bool,
    /// Reference (pre-change) serial wall time for the whole matrix, ns.
    pub reference_ns: u128,
    /// Optimized serial wall time, fully cold (all caches cleared), ns.
    pub indexed_ns: u128,
    /// Optimized serial wall time, plan memo cold / analyses warm, ns.
    pub steady_ns: u128,
    /// Cold single-plan compile through the memo path, ns.
    pub memo_cold_ns: u128,
    /// Memoized-hit single-plan fetch, ns.
    pub memo_hit_ns: u128,
    /// Optimized matrix swept in parallel (memo cleared), ns.
    pub parallel_ns: u128,
}

impl CompileReport {
    /// First-contact speedup: every cache cold, analyses recomputed.
    pub fn cold_speedup(&self) -> f64 {
        self.reference_ns as f64 / self.indexed_ns.max(1) as f64
    }

    /// The headline serial-throughput speedup: plan memo cold (every cell
    /// compiles a fresh plan) with the shared analyses warm — the
    /// steady-state of an admission server whose nets are known, exactly
    /// the "repeated compilations" regime this PR targets. The reference
    /// planner has no sharing to warm up: recomputing the analyses inside
    /// every compile is part of what it costs and part of what the rebuild
    /// removed.
    pub fn serial_speedup(&self) -> f64 {
        self.reference_ns as f64 / self.steady_ns.max(1) as f64
    }

    pub fn memo_speedup(&self) -> f64 {
        self.memo_cold_ns as f64 / self.memo_hit_ns.max(1) as f64
    }

    pub fn parallel_speedup(&self) -> f64 {
        self.indexed_ns as f64 / self.parallel_ns.max(1) as f64
    }

    /// Like [`Self::parallel_ok`], the ≥3x serial bar is vacuous on
    /// single-core boxes: with one hardware thread the reference and the
    /// optimized walk contend with the whole OS for the same core and the
    /// ratio is noise, not signal. The vacuity is recorded in the JSON
    /// (`serial_vacuous`) so a green gate can't silently mean "not run".
    pub fn serial_ok(&self) -> bool {
        self.serial_vacuous() || self.serial_speedup() >= 3.0
    }

    /// True when [`Self::serial_ok`] passes vacuously (< 2 threads).
    pub fn serial_vacuous(&self) -> bool {
        self.threads < 2
    }

    pub fn memo_ok(&self) -> bool {
        self.memo_speedup() >= 10.0
    }

    /// The >1.5x bar only applies where there are threads to scale onto.
    pub fn parallel_ok(&self) -> bool {
        self.threads < 4 || self.parallel_speedup() > 1.5
    }

    fn plans_per_sec(&self, total_ns: u128) -> f64 {
        self.cells as f64 / (total_ns as f64 / 1e9)
    }
}

/// Run the measurements (no I/O).
pub fn measure(quick: bool) -> CompileReport {
    let spec = DeviceSpec::k40c();
    let cells = cells(quick);
    let reps = if quick { 3 } else { 5 };

    // 1. Byte identity, checked over every cell before anything is timed.
    let mut byte_identical = true;
    for c in &cells {
        let fast = plan::compile(&c.net, &spec, c.policy).expect("matrix fits 12 GB");
        let slow = plan::compile_reference(&c.net, &spec, c.policy).expect("matrix fits 12 GB");
        byte_identical &= fast.plan.peak_bytes == slow.plan.peak_bytes
            && fast.plan.peak_step == slow.plan.peak_step
            && fast.plan.render(&c.net) == slow.plan.render(&c.net);
    }

    // 2. Serial throughput: reference vs optimized, both cold (the memo and
    //    the shared-analysis cache are cleared before every repetition, so
    //    each rep pays the full analysis + walk cost the way an admission
    //    ladder's first sweep does).
    let reference_ns = best_of(
        reps,
        || {},
        || {
            for c in &cells {
                plan::compile_reference(&c.net, &spec, c.policy).unwrap();
            }
        },
    );
    let indexed_ns = best_of(reps, plan::clear_all_caches, || {
        for c in &cells {
            plan::compile(&c.net, &spec, c.policy).unwrap();
        }
    });
    // Steady state: the plan memo is cold (every cell still compiles) but
    // the shared analyses are warm — the regime of a long-running admission
    // server meeting a new budget or preset.
    let steady_ns = best_of(reps, plan::clear_plan_memo, || {
        for c in &cells {
            plan::compile(&c.net, &spec, c.policy).unwrap();
        }
    });

    // 3. Memo: cold compile vs memoized hit of the heaviest cell.
    let heavy = cells.last().expect("matrix is non-empty");
    let memo_cold_ns = best_of(reps, plan::clear_all_caches, || {
        plan::compile_memo(&heavy.net, &spec, heavy.policy).unwrap();
    });
    plan::clear_all_caches();
    plan::compile_memo(&heavy.net, &spec, heavy.policy).unwrap();
    let memo_hit_ns = best_of(
        reps.max(5),
        || {},
        || {
            plan::compile_memo(&heavy.net, &spec, heavy.policy).unwrap();
        },
    );

    // 4. Parallel sweep over the rayon shim's worker pool, same cold state.
    let parallel_ns = best_of(reps, plan::clear_all_caches, || {
        rayon::par_map(&cells, |c| plan::compile(&c.net, &spec, c.policy).unwrap());
    });

    CompileReport {
        cells: cells.len(),
        threads: rayon::current_num_threads(),
        byte_identical,
        reference_ns,
        indexed_ns,
        steady_ns,
        memo_cold_ns,
        memo_hit_ns,
        parallel_ns,
    }
}

/// Run the experiment; also writes `BENCH_compile.json`.
pub fn compile(quick: bool) -> String {
    let r = measure(quick);

    let mut out = String::from(
        "compile: planner throughput — indexed structures vs the retained \
         pre-change reference, plan-memo hits, parallel sweeps\n\n",
    );
    let matrix_desc = {
        let cs = cells(quick);
        let models: Vec<&str> = {
            let mut m: Vec<&str> = cs.iter().map(|c| c.model).collect();
            m.dedup();
            m
        };
        let presets: Vec<&str> = cs
            .iter()
            .take_while(|c| c.model == cs[0].model)
            .map(|c| c.preset)
            .collect();
        format!(
            "{} cells: {{{}}} × {{{}}}",
            r.cells,
            models.join(", "),
            presets.join(", ")
        )
    };
    let mut t = TextTable::new(vec!["measure", "value"]);
    t.row(vec!["matrix".into(), matrix_desc]);
    t.row(vec![
        "byte-identical plans".to_string(),
        if r.byte_identical { "yes" } else { "NO" }.to_string(),
    ]);
    t.row(vec![
        "reference serial".into(),
        format!(
            "{:.2} ms ({:.0} plans/s)",
            r.reference_ns as f64 / 1e6,
            r.plans_per_sec(r.reference_ns)
        ),
    ]);
    t.row(vec![
        "indexed serial (cold)".into(),
        format!(
            "{:.2} ms ({:.0} plans/s) — {:.2}x",
            r.indexed_ns as f64 / 1e6,
            r.plans_per_sec(r.indexed_ns),
            r.cold_speedup()
        ),
    ]);
    t.row(vec![
        "indexed serial (steady)".into(),
        format!(
            "{:.2} ms ({:.0} plans/s) — {:.2}x",
            r.steady_ns as f64 / 1e6,
            r.plans_per_sec(r.steady_ns),
            r.serial_speedup()
        ),
    ]);
    t.row(vec![
        "memo cold / hit".into(),
        format!(
            "{:.1} µs / {:.1} µs — {:.0}x",
            r.memo_cold_ns as f64 / 1e3,
            r.memo_hit_ns as f64 / 1e3,
            r.memo_speedup()
        ),
    ]);
    t.row(vec![
        format!("parallel sweep ({} threads)", r.threads),
        format!(
            "{:.2} ms — {:.2}x vs serial",
            r.parallel_ns as f64 / 1e6,
            r.parallel_speedup()
        ),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nserial ≥3x (vacuous on <2 threads): {} | memo ≥10x: {} | parallel (>1.5x on ≥4 threads): {}\n",
        r.serial_ok(),
        r.memo_ok(),
        r.parallel_ok()
    ));

    let json = format!(
        "{{\"experiment\":\"compile\",\"cells\":{},\"threads\":{},\
         \"byte_identical\":{},\
         \"serial\":{{\"reference_ns\":{},\"indexed_cold_ns\":{},\"indexed_steady_ns\":{},\
         \"cold_speedup\":{:.4},\"speedup\":{:.4},\
         \"reference_plans_per_sec\":{:.1},\"steady_plans_per_sec\":{:.1}}},\
         \"serial_ok\":{},\"serial_vacuous\":{},\
         \"memo\":{{\"cold_ns\":{},\"hit_ns\":{},\"speedup\":{:.4}}},\
         \"memo_ok\":{},\
         \"parallel\":{{\"serial_ns\":{},\"parallel_ns\":{},\"speedup\":{:.4}}},\
         \"parallel_ok\":{}}}",
        r.cells,
        r.threads,
        r.byte_identical,
        r.reference_ns,
        r.indexed_ns,
        r.steady_ns,
        r.cold_speedup(),
        r.serial_speedup(),
        r.plans_per_sec(r.reference_ns),
        r.plans_per_sec(r.steady_ns),
        r.serial_ok(),
        r.serial_vacuous(),
        r.memo_cold_ns,
        r.memo_hit_ns,
        r.memo_speedup(),
        r.memo_ok(),
        r.indexed_ns,
        r.parallel_ns,
        r.parallel_speedup(),
        r.parallel_ok(),
    );
    match std::fs::write("BENCH_compile.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_compile.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_compile.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_planner_is_byte_identical_and_memo_pays_off() {
        let r = measure(true);
        assert!(r.byte_identical, "optimization changed plan bytes");
        assert!(
            r.memo_ok(),
            "memo hit {}ns vs cold {}ns — under 10x",
            r.memo_hit_ns,
            r.memo_cold_ns
        );
        // The serial bar is asserted by the CI smoke on the release build;
        // in debug test builds we only require the optimized path to win.
        assert!(
            r.serial_speedup() > 1.0,
            "optimized planner slower than the reference: {:.2}x",
            r.serial_speedup()
        );
    }
}
