//! The `plan` experiment: the planner/interpreter contract, measured.
//!
//! Three claims the ISSUE-3 refactor makes, checked end to end:
//!
//! 1. **Exactness** — for every model builder × policy preset in the
//!    matrix, `MemoryPlan::peak_bytes` equals the executed
//!    `IterationReport::peak_bytes` byte-for-byte, cold and warm.
//! 2. **Cheapness** — admission prediction by plan compilation
//!    (`plan_prediction`) is measurably faster than the old
//!    `predict_run` full simulated iterations; the speedup is recorded.
//! 3. **Serving** — forward-only inference plans reserve a fraction of the
//!    training peak, and a mixed training+inference stream co-schedules on
//!    the cluster simulator.
//!
//! Emits `BENCH_plan.json` for trend tracking across PRs.

use std::time::Instant;

use sn_cluster::{mixed_serving_stream, ClusterSim, Fleet, JobKind, PlacementPolicy, PolicyPreset};
use sn_models as models;
use sn_runtime::{plan_prediction, plan_prediction_inference, predict_run, Executor, Policy};
use sn_runtime::{Interconnect, PeakPrediction};
use sn_sim::DeviceSpec;

use crate::table::{mb, TextTable};

const MB: u64 = 1 << 20;

/// One matrix cell: a model × preset with its planned and executed peaks.
pub struct PlanRow {
    pub model: &'static str,
    pub batch: usize,
    pub preset: &'static str,
    pub plan_peak: u64,
    pub executed_cold: u64,
    pub executed_warm: u64,
}

impl PlanRow {
    pub fn matches(&self) -> bool {
        self.plan_peak == self.executed_cold && self.plan_peak == self.executed_warm
    }
}

/// One serving comparison: training vs forward-only peak for a model.
pub struct InferenceRow {
    pub model: &'static str,
    pub batch: usize,
    pub train: PeakPrediction,
    pub infer: PeakPrediction,
}

/// Admission-prediction cost: the same prediction set, simulated vs
/// compiled.
pub struct AdmissionTiming {
    pub predictions: usize,
    pub simulate_ns: u128,
    pub compile_ns: u128,
}

impl AdmissionTiming {
    pub fn speedup(&self) -> f64 {
        if self.compile_ns == 0 {
            return 0.0;
        }
        self.simulate_ns as f64 / self.compile_ns as f64
    }
}

/// The serving co-scheduling summary from the cluster simulator.
pub struct CoScheduleRow {
    pub jobs: usize,
    pub training_completed: usize,
    pub inference_completed: usize,
    pub rejected: usize,
}

fn matrix(quick: bool) -> Vec<(&'static str, models::NetBuilder, usize)> {
    if quick {
        vec![
            ("AlexNet", models::alexnet as models::NetBuilder, 32),
            ("ResNet50", models::resnet50, 8),
        ]
    } else {
        vec![
            ("AlexNet", models::alexnet as models::NetBuilder, 64),
            ("VGG16", models::vgg16, 16),
            ("ResNet50", models::resnet50, 16),
            ("InceptionV4", models::inception_v4, 8),
        ]
    }
}

fn presets() -> [(&'static str, Policy); 5] {
    [
        ("baseline", Policy::baseline()),
        ("liveness_only", Policy::liveness_only()),
        ("liveness_offload", Policy::liveness_offload()),
        ("full_memory", Policy::full_memory()),
        ("superneurons", Policy::superneurons()),
    ]
}

/// The exactness matrix (no I/O).
pub fn measure_matrix(quick: bool) -> Vec<PlanRow> {
    let spec = DeviceSpec::k40c();
    let mut rows = Vec::new();
    for (model, build, batch) in matrix(quick) {
        let net = build(batch);
        for (pname, policy) in presets() {
            let plan_peak = plan_prediction(&net, &spec, policy)
                .expect("matrix nets fit a 12 GB device")
                .peak_bytes;
            let mut ex = Executor::new(&net, spec.clone(), policy).unwrap();
            let cold = ex.run_iteration().unwrap().peak_bytes;
            let warm = ex.run_iteration().unwrap().peak_bytes;
            rows.push(PlanRow {
                model,
                batch,
                preset: pname,
                plan_peak,
                executed_cold: cold,
                executed_warm: warm,
            });
        }
    }
    rows
}

/// Training vs forward-only peaks per serving network (no I/O).
pub fn measure_inference(quick: bool) -> Vec<InferenceRow> {
    let spec = DeviceSpec::k40c();
    let nets = if quick {
        vec![("ResNet50", models::resnet50 as models::NetBuilder, 16)]
    } else {
        models::serving_networks()
    };
    nets.into_iter()
        .map(|(model, build, batch)| {
            let net = build(batch);
            InferenceRow {
                model,
                batch,
                train: plan_prediction(&net, &spec, Policy::superneurons()).unwrap(),
                infer: plan_prediction_inference(&net, &spec, Policy::superneurons()).unwrap(),
            }
        })
        .collect()
}

/// Time the same prediction set through the old simulated path and the new
/// compile-only path (no I/O).
pub fn measure_admission(quick: bool) -> AdmissionTiming {
    let spec = DeviceSpec::k40c();
    let set = matrix(quick);
    let mut predictions = 0usize;
    let t0 = Instant::now();
    for (_, build, batch) in &set {
        let net = build(*batch);
        for (_, policy) in presets() {
            predict_run(&net, &spec, policy).unwrap();
            predictions += 1;
        }
    }
    let simulate_ns = t0.elapsed().as_nanos();
    // Drop the plan memo and shared analyses first: this row reports what a
    // *compile* costs against a simulated iteration, not a memo hit (the
    // memo's own speedup is the `compile` experiment's business).
    sn_runtime::plan::clear_all_caches();
    let t1 = Instant::now();
    for (_, build, batch) in &set {
        let net = build(*batch);
        for (_, policy) in presets() {
            plan_prediction(&net, &spec, policy).unwrap();
        }
    }
    let compile_ns = t1.elapsed().as_nanos();
    AdmissionTiming {
        predictions,
        simulate_ns,
        compile_ns,
    }
}

/// Run the mixed training+inference stream on the 8-device fleet (no I/O).
pub fn measure_coschedule(quick: bool) -> CoScheduleRow {
    let n = if quick { 30 } else { 80 };
    let fleet = Fleet::homogeneous(
        8,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    );
    let mut sim = ClusterSim::new(fleet, PlacementPolicy::BestFit);
    let report = sim.run(mixed_serving_stream(n, 5, PolicyPreset::Superneurons, true));
    let done = |kind: JobKind| {
        report
            .jobs
            .iter()
            .filter(|j| j.kind == kind && j.completion.is_some())
            .count()
    };
    CoScheduleRow {
        jobs: n,
        training_completed: done(JobKind::Training),
        inference_completed: done(JobKind::Inference),
        rejected: report.rejected,
    }
}

/// Run the experiment; also writes `BENCH_plan.json` into the current
/// directory (the machine-readable artifact later PRs diff against).
pub fn plan(quick: bool) -> String {
    let rows = measure_matrix(quick);
    let inference = measure_inference(quick);
    let timing = measure_admission(quick);
    let cosched = measure_coschedule(quick);

    let mut out = String::from(
        "plan: planner/interpreter split — plan-predicted vs executed peaks, \
         admission-prediction cost, and inference co-scheduling\n\n",
    );
    let mut t = TextTable::new(vec![
        "model",
        "batch",
        "preset",
        "plan peak (MB)",
        "executed cold/warm (MB)",
        "byte-identical",
    ]);
    let mut all_match = true;
    for r in &rows {
        all_match &= r.matches();
        t.row(vec![
            r.model.to_string(),
            r.batch.to_string(),
            r.preset.to_string(),
            mb(r.plan_peak),
            format!("{} / {}", mb(r.executed_cold), mb(r.executed_warm)),
            if r.matches() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nall {} matrix cells byte-identical: {}\n",
        rows.len(),
        all_match
    ));

    let mut ti = TextTable::new(vec![
        "model",
        "batch",
        "train peak (MB)",
        "infer peak (MB)",
        "ratio",
    ]);
    for r in &inference {
        ti.row(vec![
            r.model.to_string(),
            r.batch.to_string(),
            mb(r.train.peak_bytes),
            mb(r.infer.peak_bytes),
            format!(
                "{:.2}x",
                r.train.peak_bytes as f64 / r.infer.peak_bytes.max(1) as f64
            ),
        ]);
    }
    out.push_str("\nforward-only serving plans vs training plans (superneurons preset):\n");
    out.push_str(&ti.render());

    out.push_str(&format!(
        "\nadmission prediction, {} (model, preset) pairs: simulate {:.1} ms vs \
         compile {:.1} ms — {:.2}x speedup (no simulated iteration on the hot path)\n",
        timing.predictions,
        timing.simulate_ns as f64 / 1e6,
        timing.compile_ns as f64 / 1e6,
        timing.speedup()
    ));
    out.push_str(&format!(
        "cluster co-scheduling ({} mixed jobs): {} training + {} inference completed, \
         {} rejected\n",
        cosched.jobs, cosched.training_completed, cosched.inference_completed, cosched.rejected
    ));

    let mut json_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json_rows.push(',');
        }
        json_rows.push_str(&format!(
            "{{\"model\":\"{}\",\"batch\":{},\"preset\":\"{}\",\"plan_peak\":{},\
             \"executed_cold\":{},\"executed_warm\":{},\"match\":{}}}",
            r.model,
            r.batch,
            r.preset,
            r.plan_peak,
            r.executed_cold,
            r.executed_warm,
            r.matches()
        ));
    }
    let mut json_inf = String::new();
    for (i, r) in inference.iter().enumerate() {
        if i > 0 {
            json_inf.push(',');
        }
        json_inf.push_str(&format!(
            "{{\"model\":\"{}\",\"batch\":{},\"train_peak\":{},\"infer_peak\":{}}}",
            r.model, r.batch, r.train.peak_bytes, r.infer.peak_bytes
        ));
    }
    let json = format!(
        "{{\"experiment\":\"plan\",\"all_peaks_match\":{all_match},\
         \"rows\":[{json_rows}],\"inference\":[{json_inf}],\
         \"admission\":{{\"predictions\":{},\"simulate_ns\":{},\"compile_ns\":{},\
         \"speedup\":{:.4}}},\
         \"cluster\":{{\"jobs\":{},\"training_completed\":{},\"inference_completed\":{},\
         \"rejected\":{}}}}}",
        timing.predictions,
        timing.simulate_ns,
        timing.compile_ns,
        timing.speedup(),
        cosched.jobs,
        cosched.training_completed,
        cosched.inference_completed,
        cosched.rejected,
    );
    match std::fs::write("BENCH_plan.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_plan.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_plan.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_peaks_are_byte_identical_across_the_matrix() {
        // The acceptance criterion: every model builder × policy preset in
        // the bench matrix agrees, plan vs execution, to the byte — cold
        // AND warm iterations.
        for r in measure_matrix(true) {
            assert!(
                r.matches(),
                "{} @{} under {}: plan {} vs executed {}/{}",
                r.model,
                r.batch,
                r.preset,
                r.plan_peak,
                r.executed_cold,
                r.executed_warm
            );
        }
    }

    #[test]
    fn inference_plans_undercut_training_plans() {
        for r in measure_inference(true) {
            assert!(
                r.infer.peak_bytes < r.train.peak_bytes,
                "{}: infer {} vs train {}",
                r.model,
                r.infer.peak_bytes,
                r.train.peak_bytes
            );
            assert!(r.infer.weight_bytes == r.train.weight_bytes);
        }
    }

    #[test]
    fn mixed_streams_complete_inference_jobs() {
        let c = measure_coschedule(true);
        assert!(c.inference_completed > 0, "serving jobs must complete");
        assert!(c.training_completed > 0, "training jobs must complete");
    }
}
