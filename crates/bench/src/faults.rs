//! The fault-tolerance experiment: MTBF sweep × recovery ladder, with hard
//! gates recorded in `BENCH_faults.json`.
//!
//! One seeded random [`FaultPlan`] per MTBF point (identical across the
//! recovery modes, so the modes see the *same* failures) drives the bench
//! fleet through three recovery ladders:
//!
//! * `no-recovery` — an interrupted gang fails permanently;
//! * `restart` — checkpoint/restart: interrupted jobs re-enter through
//!   capped exponential backoff and resume from their last checkpoint at
//!   byte-exact original budgets;
//! * `restart+elastic` — restart, plus live-downgrading running tenants
//!   through the plan memo when a blocked job could be rescued.
//!
//! Gates (all must be green):
//!
//! 1. `conservation_holds` — in every cell, submitted jobs are exactly
//!    partitioned into completed + rejected + permanently-failed +
//!    still-queued.
//! 2. `goodput_ordering` — at every MTBF point, useful iterations order
//!    `elastic ≥ restart ≥ no-recovery`: each rung of the ladder may only
//!    help.
//! 3. `peaks_exact_across_restart` — every restarted job re-admits at a
//!    (budget, peak) vector byte-identical to its original grant, and the
//!    sweep actually exercised restarts.
//! 4. `replay_deterministic` — re-running a cell with the same plan and
//!    stream reproduces a bit-identical report and schedule fingerprint.
//!
//! MTTR, retry, and wasted-work counters flow through the shared telemetry
//! registry and are embedded in the artifact.

use sn_cluster::{
    synthetic_stream, ClusterReport, ClusterSim, FaultPlan, Fleet, PlacementPolicy, PolicyPreset,
    RecoveryMode, RecoveryPolicy,
};
use sn_runtime::Interconnect;
use sn_sim::{DeviceSpec, SimTime};
use sn_telemetry::MetricsRegistry;

use crate::table::TextTable;

const MB: u64 = 1 << 20;

/// Same fleet as the `cluster`/`service` experiments: 8 small-DRAM devices,
/// memory the contended resource.
fn fleet() -> Fleet {
    Fleet::homogeneous(
        8,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    )
}

fn policy(mode: RecoveryMode) -> RecoveryPolicy {
    RecoveryPolicy::default().with_mode(mode)
}

/// One sweep cell: the arrivals replayed under `plan` with `mode` recovery.
/// `metrics` is shared across cells so the artifact carries fleet-wide MTTR
/// and retry aggregates.
fn run_cell(
    arrivals: &[(SimTime, sn_cluster::JobSpec)],
    plan: &FaultPlan,
    mode: RecoveryMode,
    metrics: Option<&MetricsRegistry>,
) -> ClusterReport {
    let mut sim = ClusterSim::new(fleet(), PlacementPolicy::FirstFit);
    sim.enable_faults(plan.clone(), policy(mode));
    if let Some(reg) = metrics {
        sim.enable_metrics(reg);
    }
    sim.run(arrivals.to_vec())
}

/// True when every job in the report kept its restart plans byte-exact.
fn peaks_exact(report: &ClusterReport) -> bool {
    report.jobs.iter().all(|j| j.restart_peak_exact)
}

/// FNV-1a digest of the (multi-line) schedule fingerprint, so the artifact
/// carries a compact replay token instead of the full trace text.
fn fingerprint_digest(report: &ClusterReport) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in report.schedule_fingerprint().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Run the experiment; writes `BENCH_faults.json` into the current
/// directory.
pub fn faults(quick: bool) -> String {
    let n_jobs = if quick { 30 } else { 80 };
    // Jobs request the *weakest* preset with downgrade allowed: tenants
    // admitted at baseline leave the elastic rung real room to squeeze.
    let arrivals = synthetic_stream(n_jobs, 13, PolicyPreset::Baseline, true);

    // Probe the fault-free makespan so MTBF points scale with the run
    // instead of hard-coding nanoseconds.
    let probe = ClusterSim::new(fleet(), PlacementPolicy::FirstFit).run(arrivals.clone());
    let makespan = probe.makespan.0.max(1);

    let mut out = String::new();
    out.push_str(&format!(
        "faults: MTBF sweep x recovery ladder, {n_jobs} jobs, \
         fault-free makespan {:.2} ms\n\n",
        makespan as f64 / 1e6
    ));

    // MTBF as fractions of the fault-free makespan: from "one failure or
    // two" down to "failures are the steady state". MTTR = MTBF/4, faults
    // injected across twice the fault-free horizon (recovery stretches the
    // run past the probe's makespan).
    let dividers: &[u64] = if quick { &[4] } else { &[2, 4, 8] };
    let modes = [
        RecoveryMode::NoRecovery,
        RecoveryMode::Restart,
        RecoveryMode::RestartElastic,
    ];

    let metrics = MetricsRegistry::new();
    let mut table = TextTable::new(vec![
        "mtbf (ms)",
        "mode",
        "completed",
        "failed",
        "queued",
        "restarts",
        "useful iters",
        "wasted iters",
        "goodput (it/s)",
    ]);

    let mut conservation_holds = true;
    let mut goodput_ordering = true;
    let mut peaks_ok = true;
    let mut replay_deterministic = true;
    let mut total_restarts = 0u64;
    let mut cell_rows = String::new();

    for &div in dividers {
        let mtbf = SimTime(makespan / div);
        let mttr = SimTime((makespan / div / 4).max(1));
        let plan = FaultPlan::seeded_random(
            0xfa17 + div,
            fleet().len(),
            SimTime(2 * makespan),
            mtbf,
            mttr,
        );

        let mut useful_by_mode = Vec::with_capacity(modes.len());
        for mode in modes {
            let report = run_cell(&arrivals, &plan, mode, Some(&metrics));
            conservation_holds &= report.conservation_holds();
            peaks_ok &= peaks_exact(&report);
            total_restarts += report.restarts;
            useful_by_mode.push(report.useful_iterations);

            if mode == RecoveryMode::Restart {
                // Replay gate: same plan + stream → bit-identical report.
                let again = run_cell(&arrivals, &plan, mode, None);
                replay_deterministic &= report.bit_identical(&again)
                    && report.schedule_fingerprint() == again.schedule_fingerprint();
            }

            table.row(vec![
                format!("{:.2}", mtbf.0 as f64 / 1e6),
                mode.name().to_string(),
                report.completed.to_string(),
                report.failed.to_string(),
                report.still_queued.to_string(),
                report.restarts.to_string(),
                report.useful_iterations.to_string(),
                report.wasted_iterations.to_string(),
                format!("{:.1}", report.goodput_iters_per_sec),
            ]);
            if !cell_rows.is_empty() {
                cell_rows.push(',');
            }
            cell_rows.push_str(&format!(
                "{{\"mtbf_ns\":{},\"mode\":\"{}\",\"completed\":{},\"failed\":{},\
                 \"still_queued\":{},\"restarts\":{},\"useful_iterations\":{},\
                 \"wasted_iterations\":{},\"goodput_iters_per_sec\":{:.4},\
                 \"raw_iters_per_sec\":{:.4},\"conservation\":{},\"peaks_exact\":{},\
                 \"fingerprint\":\"{}\"}}",
                mtbf.0,
                mode.name(),
                report.completed,
                report.failed,
                report.still_queued,
                report.restarts,
                report.useful_iterations,
                report.wasted_iterations,
                report.goodput_iters_per_sec,
                report.raw_iters_per_sec,
                report.conservation_holds(),
                peaks_exact(&report),
                fingerprint_digest(&report),
            ));
        }
        // Each recovery rung may only help: elastic ≥ restart ≥ none.
        goodput_ordering &=
            useful_by_mode[2] >= useful_by_mode[1] && useful_by_mode[1] >= useful_by_mode[0];
    }
    let peaks_exact_across_restart = peaks_ok && total_restarts > 0;

    out.push_str(&table.render());
    let snap = metrics.snapshot();
    let failures = snap.counter("cluster.faults.device_failures").unwrap_or(0);
    let recoveries = snap
        .counter("cluster.faults.device_recoveries")
        .unwrap_or(0);
    let retries = snap.counter("cluster.retries.scheduled").unwrap_or(0);
    let mttr_mean = snap
        .histogram("cluster.faults.mttr_ns")
        .map(|h| h.mean())
        .unwrap_or(0.0);
    out.push_str(&format!(
        "\ntelemetry: {failures} device failures, {recoveries} recoveries \
         (mean MTTR {:.2} ms), {retries} retries scheduled\n",
        mttr_mean / 1e6
    ));
    out.push_str(&format!(
        "\ngates: conservation_holds {conservation_holds}, \
         goodput_ordering {goodput_ordering}, \
         peaks_exact_across_restart {peaks_exact_across_restart}, \
         replay_deterministic {replay_deterministic}\n"
    ));

    let json = format!(
        "{{\"experiment\":\"faults\",\"quick\":{quick},\"jobs\":{n_jobs},\
         \"fault_free_makespan_ns\":{makespan},\
         \"cells\":[{cell_rows}],\
         \"metrics\":{},\
         \"gates\":{{\"conservation_holds\":{conservation_holds},\
         \"goodput_ordering\":{goodput_ordering},\
         \"peaks_exact_across_restart\":{peaks_exact_across_restart},\
         \"replay_deterministic\":{replay_deterministic}}}}}",
        snap.to_json(),
    );
    match std::fs::write("BENCH_faults.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_faults.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_faults.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_arrivals() -> Vec<(SimTime, sn_cluster::JobSpec)> {
        synthetic_stream(14, 13, PolicyPreset::Superneurons, true)
    }

    #[test]
    fn cells_conserve_jobs_and_replay_deterministically() {
        let arrivals = small_arrivals();
        let probe = ClusterSim::new(fleet(), PlacementPolicy::FirstFit).run(arrivals.clone());
        let m = probe.makespan.0.max(1);
        let plan = FaultPlan::seeded_random(
            0xfa17,
            fleet().len(),
            SimTime(2 * m),
            SimTime(m / 4),
            SimTime((m / 16).max(1)),
        );
        let a = run_cell(&arrivals, &plan, RecoveryMode::Restart, None);
        let b = run_cell(&arrivals, &plan, RecoveryMode::Restart, None);
        assert!(a.conservation_holds());
        assert!(peaks_exact(&a));
        assert!(a.bit_identical(&b));
        assert_eq!(a.schedule_fingerprint(), b.schedule_fingerprint());
    }

    #[test]
    fn recovery_beats_no_recovery_on_useful_iterations() {
        let arrivals = small_arrivals();
        let probe = ClusterSim::new(fleet(), PlacementPolicy::FirstFit).run(arrivals.clone());
        let m = probe.makespan.0.max(1);
        let plan = FaultPlan::seeded_random(
            0xfa17,
            fleet().len(),
            SimTime(2 * m),
            SimTime(m / 4),
            SimTime((m / 16).max(1)),
        );
        let none = run_cell(&arrivals, &plan, RecoveryMode::NoRecovery, None);
        let restart = run_cell(&arrivals, &plan, RecoveryMode::Restart, None);
        let elastic = run_cell(&arrivals, &plan, RecoveryMode::RestartElastic, None);
        assert!(restart.useful_iterations >= none.useful_iterations);
        assert!(elastic.useful_iterations >= restart.useful_iterations);
    }
}
