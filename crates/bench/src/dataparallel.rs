//! The `dataparallel` experiment: device-group execution, measured.
//!
//! Three claims the device-group lift makes, checked across the
//! replicas ∈ {1, 2, 4, 8} × {VGG16, ResNet50} matrix:
//!
//! 1. **Byte-identity** — every replica of a gang executes at *exactly* the
//!    single-device plan's peak: data parallelism changes when collectives
//!    run, never what is resident (the exact-peak admission invariant
//!    survives the lift).
//! 2. **Overlap wins** — bucketed ring all-reduce overlapped with the
//!    remaining backward compute strictly beats the classic
//!    serialize-at-iteration-end baseline on every ≥2-replica point.
//! 3. **Determinism** — the matrix measured over the rayon worker pool is
//!    byte-identical to the serial sweep (gated only when ≥4 hardware
//!    threads exist, as in the `compile` smoke — the dev box has one).
//!
//! Emits `BENCH_dataparallel.json` with the gate fields CI greps.

use sn_models as models;
use sn_runtime::{plan_prediction, GroupConfig, GroupExecutor, Interconnect, Policy};
use sn_sim::{DeviceSpec, SimTime};

use crate::table::{mb, TextTable};

/// The gang sizes every model sweeps.
pub const REPLICAS: [usize; 4] = [1, 2, 4, 8];

/// One matrix point: a model × gang size, measured in both collective
/// modes.
pub struct DpRow {
    pub model: &'static str,
    pub batch: usize,
    pub replicas: usize,
    /// The single-device plan's exact peak (what admission reserves).
    pub single_peak: u64,
    /// The executed per-replica peak (must equal `single_peak`).
    pub replica_peak: u64,
    pub buckets: usize,
    pub grad_bytes: u64,
    pub wire_bytes: u64,
    pub comm_workspace: u64,
    /// Gang step with bucketed all-reduce overlapped into backward.
    pub step_overlap: SimTime,
    /// Gang step with every collective serialized at iteration end.
    pub step_serialized: SimTime,
    /// Fraction of collective time hidden under kernels (overlap mode).
    pub overlap_fraction: f64,
    /// Aggregate gang throughput (overlap mode).
    pub imgs_per_sec: f64,
    /// Scaling efficiency vs. a perfect k× of the single-replica rate.
    pub efficiency: f64,
    pub peaks_match: bool,
}

impl DpRow {
    /// Does this point satisfy the overlap gate? (Single replicas have no
    /// collective to hide; the gate is the ≥2-replica strict win.)
    pub fn overlap_wins(&self) -> bool {
        self.replicas == 1 || self.step_overlap < self.step_serialized
    }
}

fn matrix(quick: bool) -> Vec<(&'static str, models::NetBuilder, usize)> {
    if quick {
        vec![
            ("VGG16", models::vgg16 as models::NetBuilder, 8),
            ("ResNet50", models::resnet50, 8),
        ]
    } else {
        vec![
            ("VGG16", models::vgg16 as models::NetBuilder, 16),
            ("ResNet50", models::resnet50, 16),
        ]
    }
}

fn measure_point(
    model: &'static str,
    build: models::NetBuilder,
    batch: usize,
    replicas: usize,
    solo_step: SimTime,
) -> DpRow {
    let spec = DeviceSpec::k40c();
    let policy = Policy::superneurons();
    let net = build(batch);
    let single_peak = plan_prediction(&net, &spec, policy)
        .expect("matrix nets fit a 12 GB device")
        .peak_bytes;
    let cfg = GroupConfig::new(replicas, Interconnect::pcie());
    let run = |cfg: GroupConfig| {
        let mut gx = GroupExecutor::new(&net, spec.clone(), policy, cfg)
            .expect("group compiles wherever the solo plan does");
        gx.run_iteration().expect("cold iteration");
        gx.run_iteration().expect("warm iteration")
    };
    let o = run(cfg);
    let s = run(cfg.serialized());
    let gplan = sn_runtime::compile_group_memo(&net, &spec, policy, &cfg).unwrap();
    DpRow {
        model,
        batch,
        replicas,
        single_peak,
        replica_peak: o.replica.peak_bytes,
        buckets: gplan.buckets.len(),
        grad_bytes: o.grad_bytes,
        wire_bytes: o.wire_bytes,
        comm_workspace: gplan.comm_workspace_bytes,
        step_overlap: o.step_time,
        step_serialized: s.step_time,
        overlap_fraction: o.allreduce_overlap_fraction(),
        imgs_per_sec: o.imgs_per_sec(batch),
        // solo/step: (k·batch/step) / (k · batch/solo) — guarded, the step
        // of a non-empty net is never zero but the JSON must stay finite.
        efficiency: if o.step_time == SimTime::ZERO {
            0.0
        } else {
            solo_step.as_ns() as f64 / o.step_time.as_ns() as f64
        },
        peaks_match: o.peaks_match && s.peaks_match && o.replica.peak_bytes == single_peak,
    }
}

/// Measure the full matrix, serially (no I/O).
pub fn measure(quick: bool) -> Vec<DpRow> {
    let points = point_list(quick);
    points
        .iter()
        .map(|p| measure_point(p.0, p.1, p.2, p.3, p.4))
        .collect()
}

/// The flattened (model, build, batch, replicas, solo step) point list —
/// the solo step is measured once per model so every row's efficiency is
/// relative to the same single-replica pace.
fn point_list(quick: bool) -> Vec<(&'static str, models::NetBuilder, usize, usize, SimTime)> {
    let spec = DeviceSpec::k40c();
    let policy = Policy::superneurons();
    let mut points = Vec::new();
    for (model, build, batch) in matrix(quick) {
        let net = build(batch);
        let solo_step = {
            let mut gx = GroupExecutor::new(
                &net,
                spec.clone(),
                policy,
                GroupConfig::new(1, Interconnect::pcie()),
            )
            .expect("solo group must run");
            gx.run_iteration().expect("cold");
            gx.run_iteration().expect("warm").step_time
        };
        for k in REPLICAS {
            points.push((model, build, batch, k, solo_step));
        }
    }
    points
}

/// Run the experiment; also writes `BENCH_dataparallel.json` into the
/// current directory (the machine-readable artifact later PRs diff
/// against).
pub fn dataparallel(quick: bool) -> String {
    let points = point_list(quick);
    let rows: Vec<DpRow> = points
        .iter()
        .map(|p| measure_point(p.0, p.1, p.2, p.3, p.4))
        .collect();

    // Determinism under the worker pool: re-measure the matrix via
    // rayon's par_map and require byte-identical results. Only meaningful
    // with real parallelism — vacuously true (and marked skipped) on boxes
    // with fewer than 4 hardware threads, as in the `compile` smoke.
    let threads = rayon::current_num_threads();
    let parallel_checked = threads >= 4;
    let parallel_ok = if parallel_checked {
        let par_rows = rayon::par_map(&points, |p| measure_point(p.0, p.1, p.2, p.3, p.4));
        par_rows.len() == rows.len()
            && rows.iter().zip(&par_rows).all(|(a, b)| {
                a.step_overlap == b.step_overlap
                    && a.step_serialized == b.step_serialized
                    && a.replica_peak == b.replica_peak
                    && a.wire_bytes == b.wire_bytes
            })
    } else {
        true
    };

    let all_peaks_match = rows.iter().all(|r| r.peaks_match);
    let overlap_beats_serialized = rows.iter().all(|r| r.overlap_wins());

    let mut out = String::from(
        "dataparallel: device-group execution — per-replica byte-identity and \
         overlapped vs serialized bucketed all-reduce (K40c gang over a 10 GB/s \
         PCIe ring)\n\n",
    );
    let mut t = TextTable::new(vec![
        "model",
        "batch",
        "k",
        "buckets",
        "grad (MB)",
        "step olap (ms)",
        "step serial (ms)",
        "speedup",
        "comm hidden",
        "img/s",
        "efficiency",
        "peak (MB)",
        "byte-identical",
    ]);
    for r in &rows {
        t.row(vec![
            r.model.to_string(),
            r.batch.to_string(),
            r.replicas.to_string(),
            r.buckets.to_string(),
            mb(r.grad_bytes),
            format!("{:.2}", r.step_overlap.as_ms_f64()),
            format!("{:.2}", r.step_serialized.as_ms_f64()),
            if r.replicas == 1 {
                "-".into()
            } else {
                format!(
                    "{:.2}x",
                    r.step_serialized.as_ns() as f64 / r.step_overlap.as_ns().max(1) as f64
                )
            },
            format!("{:.1}%", 100.0 * r.overlap_fraction),
            format!("{:.1}", r.imgs_per_sec),
            format!("{:.2}", r.efficiency),
            mb(r.replica_peak),
            if r.peaks_match { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nall replica peaks == single-device plan peaks: {all_peaks_match}\n\
         overlap strictly beats serialized on every >=2-replica point: \
         {overlap_beats_serialized}\n\
         parallel sweep determinism: {}\n",
        if parallel_checked {
            if parallel_ok {
                "ok"
            } else {
                "FAILED"
            }
        } else {
            "skipped (<4 hardware threads)"
        }
    ));

    let mut json_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json_rows.push(',');
        }
        json_rows.push_str(&format!(
            "{{\"model\":\"{}\",\"batch\":{},\"replicas\":{},\"buckets\":{},\
             \"grad_bytes\":{},\"wire_bytes\":{},\"comm_workspace_bytes\":{},\
             \"single_peak\":{},\"replica_peak\":{},\"step_overlap_ns\":{},\
             \"step_serialized_ns\":{},\"overlap_fraction\":{:.6},\
             \"imgs_per_sec\":{:.3},\"efficiency\":{:.6},\"peaks_match\":{},\
             \"overlap_wins\":{}}}",
            r.model,
            r.batch,
            r.replicas,
            r.buckets,
            r.grad_bytes,
            r.wire_bytes,
            r.comm_workspace,
            r.single_peak,
            r.replica_peak,
            r.step_overlap.as_ns(),
            r.step_serialized.as_ns(),
            r.overlap_fraction,
            r.imgs_per_sec,
            r.efficiency,
            r.peaks_match,
            r.overlap_wins(),
        ));
    }
    let json = format!(
        "{{\"experiment\":\"dataparallel\",\"all_peaks_match\":{all_peaks_match},\
         \"overlap_beats_serialized\":{overlap_beats_serialized},\
         \"parallel_ok\":{parallel_ok},\"parallel_checked\":{parallel_checked},\
         \"hw_threads\":{threads},\"rows\":[{json_rows}]}}"
    );
    match std::fs::write("BENCH_dataparallel.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_dataparallel.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_dataparallel.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_matrix_point_holds_the_group_gates() {
        // The acceptance criteria, asserted point by point: per-replica
        // byte-identity to the single-device plan, and the strict overlap
        // win on every ≥2-replica point.
        for r in measure(true) {
            assert!(
                r.peaks_match,
                "{} k={}: replica peak {} vs single-device {}",
                r.model, r.replicas, r.replica_peak, r.single_peak
            );
            assert!(
                r.overlap_wins(),
                "{} k={}: overlap {} vs serialized {}",
                r.model,
                r.replicas,
                r.step_overlap,
                r.step_serialized
            );
            if r.replicas > 1 {
                assert!(r.buckets >= 2, "{}: gradient payload must bucket", r.model);
                assert!(r.overlap_fraction > 0.0);
                assert!(r.efficiency > 0.0 && r.efficiency <= 1.0 + 1e-9);
            } else {
                assert_eq!(r.wire_bytes, 0);
            }
            assert!(r.imgs_per_sec.is_finite());
        }
    }

    #[test]
    fn scaling_efficiency_decays_but_throughput_grows() {
        let rows = measure(true);
        for model in ["VGG16", "ResNet50"] {
            let series: Vec<&DpRow> = rows.iter().filter(|r| r.model == model).collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].imgs_per_sec > pair[0].imgs_per_sec,
                    "{model}: more replicas, more aggregate throughput"
                );
                assert!(
                    pair[1].efficiency <= pair[0].efficiency + 1e-9,
                    "{model}: efficiency must not grow with scale"
                );
            }
        }
    }
}
