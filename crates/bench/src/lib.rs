//! # sn-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§4). Each
//! returns the formatted report it prints, so integration tests can assert
//! on the *shape* of the results (who wins, by roughly what factor, where
//! the crossovers fall) without duplicating the measurement code.
//!
//! Run everything with `cargo run --release -p sn-bench --bin experiments --
//! all` (or a single experiment id, e.g. `table4`). Criterion
//! micro-benchmarks live in `benches/`.

pub mod ablation;
pub mod cluster;
pub mod compile;
pub mod dataparallel;
pub mod experiments;
pub mod faults;
pub mod overlap;
pub mod plan;
pub mod precision;
pub mod service;
pub mod table;
pub mod trace;
pub mod tune;

pub use ablation::run_ablations;
pub use cluster::cluster;
pub use compile::compile;
pub use dataparallel::dataparallel;
pub use experiments::*;
pub use faults::faults;
pub use overlap::overlap;
pub use plan::plan;
pub use precision::precision;
pub use service::service;
pub use trace::trace;
pub use tune::tune;
