//! The `overlap` experiment: how much PCIe traffic the multi-stream engine
//! hides under compute, per policy.
//!
//! Each policy runs a memory-constrained VGG16 on a device sized to its own
//! working set (predicted peak + a small margin), once with the asynchronous
//! multi-stream engine and once with every DMA serialized against the host
//! (`Policy::synchronous`). The async engine must be strictly faster with a
//! positive overlap fraction at an *unchanged* peak — overlap changes when
//! transfers run, never what is resident. Emits `BENCH_overlap.json` for
//! trend tracking across PRs.

use sn_models as models;
use sn_runtime::session::Session;
use sn_runtime::{predict_peak_bytes, Policy};
use sn_sim::{DeviceSpec, SimTime};

use crate::table::{mb, TextTable};

const MB: u64 = 1 << 20;

/// One measured configuration.
pub struct OverlapRow {
    pub policy: &'static str,
    pub sync: bool,
    pub dram_bytes: u64,
    pub iter_time: SimTime,
    pub imgs_per_sec: f64,
    pub peak_bytes: u64,
    pub traffic_bytes: u64,
    pub overlap_fraction: f64,
    pub stall: SimTime,
}

/// The VGG16 batch size a run measures at.
pub fn batch_for(quick: bool) -> usize {
    if quick {
        8
    } else {
        16
    }
}

/// Run the experiment's measurements (no I/O).
pub fn measure(quick: bool) -> Vec<OverlapRow> {
    let batch = batch_for(quick);
    let spec = DeviceSpec::k40c();
    // Eager offload/prefetch sized to its own peak; the Tensor Cache sized
    // below its comfort point so eviction traffic actually flows.
    let lo_dram = predict_peak_bytes(&models::vgg16(batch), &spec, Policy::liveness_offload())
        .expect("vgg16 fits a 12GB K40c")
        + 8 * MB;
    let sn_dram = predict_peak_bytes(&models::vgg16(batch), &spec, Policy::full_memory())
        .expect("vgg16 fits a 12GB K40c")
        + 4 * MB;

    let configs: [(&'static str, Policy, u64); 2] = [
        ("liveness+offload", Policy::liveness_offload(), lo_dram),
        ("superneurons", Policy::superneurons(), sn_dram),
    ];
    let mut rows = Vec::new();
    for (name, policy, dram) in configs {
        for sync in [false, true] {
            let pol = if sync { policy.synchronous() } else { policy };
            let r = Session::new(models::vgg16(batch), spec.clone().with_dram(dram), pol)
                .run()
                .expect("constrained run must still fit");
            rows.push(OverlapRow {
                policy: name,
                sync,
                dram_bytes: dram,
                iter_time: r.iter_time,
                imgs_per_sec: r.imgs_per_sec,
                peak_bytes: r.peak_bytes,
                traffic_bytes: r.traffic_per_iter(),
                overlap_fraction: r.overlap_fraction(),
                stall: r.stall,
            });
        }
    }
    rows
}

/// Run the experiment; also writes `BENCH_overlap.json` into the current
/// directory (the machine-readable artifact later PRs diff against).
pub fn overlap(quick: bool) -> String {
    let batch = batch_for(quick);
    let rows = measure(quick);

    let mut out = format!(
        "overlap: compute/transfer overlap per policy, VGG16 batch {batch} on a \
         per-policy-constrained K40c\n\
         (async = multi-stream engine; sync = every DMA serialized against the host)\n\n"
    );
    let mut t = TextTable::new(vec![
        "policy",
        "engine",
        "iter (ms)",
        "img/s",
        "peak (MB)",
        "traffic (MB)",
        "overlap",
        "stall (ms)",
    ]);
    for r in &rows {
        t.row(vec![
            r.policy.to_string(),
            if r.sync { "sync" } else { "async" }.to_string(),
            format!("{:.2}", r.iter_time.as_ms_f64()),
            format!("{:.1}", r.imgs_per_sec),
            mb(r.peak_bytes),
            mb(r.traffic_bytes),
            format!("{:.1}%", 100.0 * r.overlap_fraction),
            format!("{:.2}", r.stall.as_ms_f64()),
        ]);
    }
    out.push_str(&t.render());

    // Headline: same policy, same device — only the engine differs.
    let mut json_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json_rows.push(',');
        }
        json_rows.push_str(&format!(
            "{{\"policy\":\"{}\",\"sync\":{},\"dram_bytes\":{},\"iter_ns\":{},\
             \"peak_bytes\":{},\"traffic_bytes\":{},\"overlap_fraction\":{:.6},\
             \"stall_ns\":{}}}",
            r.policy,
            r.sync,
            r.dram_bytes,
            r.iter_time.as_ns(),
            r.peak_bytes,
            r.traffic_bytes,
            r.overlap_fraction,
            r.stall.as_ns()
        ));
    }
    for pair in rows.chunks(2) {
        let (a, s) = (&pair[0], &pair[1]);
        out.push_str(&format!(
            "\n{}: async {:.2} ms vs sync {:.2} ms ({:.2}x), overlap {:.1}% vs {:.1}%, \
             peak {} vs {} MB ({})\n",
            a.policy,
            a.iter_time.as_ms_f64(),
            s.iter_time.as_ms_f64(),
            s.iter_time.as_ns() as f64 / a.iter_time.as_ns() as f64,
            100.0 * a.overlap_fraction,
            100.0 * s.overlap_fraction,
            mb(a.peak_bytes),
            mb(s.peak_bytes),
            if a.peak_bytes == s.peak_bytes {
                "unchanged"
            } else {
                "CHANGED"
            }
        ));
    }

    let json = format!(
        "{{\"experiment\":\"overlap\",\"net\":\"VGG16\",\"batch\":{batch},\
         \"rows\":[{json_rows}]}}"
    );
    match std::fs::write("BENCH_overlap.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_overlap.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_overlap.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_engine_wins_at_unchanged_peak_for_every_policy() {
        let rows = measure(true);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (a, s) = (&pair[0], &pair[1]);
            assert!(!a.sync && s.sync);
            assert!(a.traffic_bytes > 0, "{}: no transfers to overlap", a.policy);
            assert!(
                a.iter_time < s.iter_time,
                "{}: async {} must beat sync {}",
                a.policy,
                a.iter_time,
                s.iter_time
            );
            assert!(
                a.overlap_fraction > 0.0,
                "{}: async engine must hide some transfer time",
                a.policy
            );
            assert_eq!(
                s.overlap_fraction, 0.0,
                "{}: serialized transfers cannot overlap",
                s.policy
            );
            assert_eq!(
                a.peak_bytes, s.peak_bytes,
                "{}: overlap must not change the peak",
                a.policy
            );
        }
    }
}
