//! The cluster-serving experiment: the paper's per-policy `peak_m` savings,
//! lifted to fleet capacity.
//!
//! One synthetic job stream is replayed against the same 8-device fleet
//! under every admission preset and placement policy. Because admission
//! reserves each job's *predicted* peak, a memory-stronger preset shrinks
//! reservations and packs more tenants per device — the experiment reports
//! rejected jobs, peak concurrency, latency percentiles, throughput, and
//! utilization per configuration, and emits `BENCH_cluster.json` for trend
//! tracking across PRs.

use sn_cluster::{synthetic_stream, ClusterSim, Fleet, PlacementPolicy, PolicyPreset};
use sn_runtime::Interconnect;
use sn_sim::DeviceSpec;

use crate::table::TextTable;

const MB: u64 = 1 << 20;

/// Fleet used throughout: 8 small-DRAM devices, so memory (not compute) is
/// the contended resource for the synthetic stream.
fn fleet() -> Fleet {
    Fleet::homogeneous(
        8,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    )
}

/// Run the experiment; also writes `BENCH_cluster.json` into the current
/// directory (the machine-readable artifact later PRs diff against).
pub fn cluster(quick: bool) -> String {
    let n_jobs = if quick { 40 } else { 120 };
    let seed = 1u64;

    let mut out = String::new();
    out.push_str(&format!(
        "cluster serving: {n_jobs} jobs over an 8x96MB-device fleet, one admission preset per run\n\
         (policy choice as a capacity lever: stronger presets reserve smaller predicted peaks)\n\n"
    ));

    let mut t = TextTable::new(vec![
        "preset",
        "placement",
        "completed",
        "rejected",
        "peak tenants",
        "jobs/s",
        "p50 lat (ms)",
        "p99 lat (ms)",
        "mean queue (ms)",
        "mem util",
    ]);

    let mut json_runs = String::new();
    let mut first = true;
    // The (preset, BestFit) reports double as the headline comparison below.
    let mut base_bestfit = None;
    let mut sn_bestfit = None;
    for preset in [
        PolicyPreset::Baseline,
        PolicyPreset::LivenessOnly,
        PolicyPreset::FullMemory,
        PolicyPreset::Superneurons,
    ] {
        for placement in PlacementPolicy::ALL {
            let mut sim = ClusterSim::new(fleet(), placement);
            let report = sim.run(synthetic_stream(n_jobs, seed, preset, false));
            t.row(vec![
                preset.name().to_string(),
                placement.name().to_string(),
                report.completed.to_string(),
                report.rejected.to_string(),
                report.peak_concurrent_jobs.to_string(),
                format!("{:.1}", report.jobs_per_sec),
                format!("{:.2}", report.p50_latency.as_ms_f64()),
                format!("{:.2}", report.p99_latency.as_ms_f64()),
                format!("{:.2}", report.mean_queueing.as_ms_f64()),
                format!("{:.1}%", 100.0 * report.memory_utilization),
            ]);
            if !first {
                json_runs.push(',');
            }
            first = false;
            json_runs.push_str(&format!(
                "{{\"preset\":\"{}\",\"report\":{}}}",
                preset.name(),
                report.to_json()
            ));
            if placement == PlacementPolicy::BestFit {
                match preset {
                    PolicyPreset::Baseline => base_bestfit = Some(report),
                    PolicyPreset::Superneurons => sn_bestfit = Some(report),
                    _ => {}
                }
            }
        }
    }
    out.push_str(&t.render());

    // The headline comparison the acceptance criterion names: same fleet,
    // same stream, baseline vs superneurons admission.
    let base = base_bestfit.expect("baseline/best_fit ran above");
    let sn = sn_bestfit.expect("superneurons/best_fit ran above");
    out.push_str(&format!(
        "\nsame fleet, same stream: baseline admits peak {} tenants ({} rejected), \
         superneurons admits peak {} tenants ({} rejected)\n",
        base.peak_concurrent_jobs, base.rejected, sn.peak_concurrent_jobs, sn.rejected
    ));

    let json = format!(
        "{{\"experiment\":\"cluster\",\"jobs\":{n_jobs},\"devices\":8,\
         \"device_dram_bytes\":{},\"seed\":{seed},\
         \"baseline_peak_tenants\":{},\"superneurons_peak_tenants\":{},\
         \"runs\":[{}]}}",
        96 * MB,
        base.peak_concurrent_jobs,
        sn.peak_concurrent_jobs,
        json_runs
    );
    match std::fs::write("BENCH_cluster.json", &json) {
        Ok(()) => out.push_str("wrote BENCH_cluster.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_cluster.json: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_experiment_shows_the_tenancy_win() {
        let run = |preset| {
            let mut sim = ClusterSim::new(fleet(), PlacementPolicy::BestFit);
            sim.run(synthetic_stream(40, 1, preset, false))
        };
        let base = run(PolicyPreset::Baseline);
        let sn = run(PolicyPreset::Superneurons);
        assert!(
            sn.peak_concurrent_jobs > base.peak_concurrent_jobs,
            "superneurons must pack more tenants ({} vs {})",
            sn.peak_concurrent_jobs,
            base.peak_concurrent_jobs
        );
        assert!(sn.rejected <= base.rejected);
    }
}
