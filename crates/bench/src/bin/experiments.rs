//! Experiment harness CLI: regenerate any table or figure of the paper.
//!
//! ```text
//! cargo run --release -p sn-bench --bin experiments -- all
//! cargo run --release -p sn-bench --bin experiments -- table4
//! cargo run --release -p sn-bench --bin experiments -- table5 --quick
//! ```

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for id in which {
        let text = match id {
            "fig2" => sn_bench::fig2(),
            "fig8" => sn_bench::fig8(),
            "fig10" => sn_bench::fig10(),
            "table1" => sn_bench::table1(),
            "table2" => sn_bench::table2(),
            "table3" => sn_bench::table3(),
            "fig11" => sn_bench::fig11(),
            "fig12" => sn_bench::fig12(),
            "table4" => sn_bench::table4(quick),
            "table5" => sn_bench::table5(quick),
            "fig13" => sn_bench::fig13(quick),
            "fig14" => sn_bench::fig14(quick),
            "ablation" => sn_bench::run_ablations(),
            "overlap" => sn_bench::overlap(quick),
            "cluster" => sn_bench::cluster(quick),
            "plan" => sn_bench::plan(quick),
            "compile" => sn_bench::compile(quick),
            "dataparallel" => sn_bench::dataparallel(quick),
            "precision" => sn_bench::precision(quick),
            "trace" => sn_bench::trace(quick),
            "service" => sn_bench::service(quick),
            "faults" => sn_bench::faults(quick),
            "tune" => sn_bench::tune(quick),
            "all" => sn_bench::run_all(quick),
            other => {
                eprintln!(
                    "unknown experiment '{other}'; known: fig2 fig8 fig10 table1 table2 table3 \
                     fig11 fig12 table4 table5 fig13 fig14 ablation overlap cluster plan compile \
                     dataparallel precision trace service faults tune all  (flag: --quick)"
                );
                std::process::exit(2);
            }
        };
        writeln!(lock, "{text}").unwrap();
    }
}
