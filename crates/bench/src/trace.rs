//! The `trace` experiment: the unified telemetry layer, exercised end to
//! end and gated on its structural invariants.
//!
//! Part A runs a 2-replica VGG16 gang on a memory-constrained device — cold
//! iteration untraced (memos warm, sink off), then a traced + metered warm
//! iteration — and checks that the exported timeline *is* the measurement:
//! the hidden-communication story the Link-track spans tell must reproduce
//! [`sn_runtime::GroupIterationReport`]'s `allreduce_busy`/`allreduce_hidden`
//! to the nanosecond. Part B replays a small synthetic job stream (with a
//! guaranteed-impossible gang) through [`sn_cluster::ClusterSim`] so the
//! per-tenant tracks and admission metrics populate too.
//!
//! Gates CI greps from `BENCH_trace.json`:
//! * `trace_valid` — every span on a defined track, per-track spans
//!   time-ordered and non-overlapping, every flow arrow resolving to
//!   emitted spans in causal order;
//! * `metrics_consistent` — histogram totals equal their counter sums
//!   (iterations, admissions, completions, per-kind rejects);
//! * `overlap_matches` — the trace-derived hidden-comm fraction equals the
//!   group report's within 1 ns of busy/hidden time.
//!
//! Also writes the Perfetto-loadable `BENCH_trace.trace.json`.

use sn_cluster::{
    synthetic_stream, ClusterSim, Fleet, JobSpec, PlacementPolicy, PolicyPreset, Workload,
};
use sn_models as models;
use sn_runtime::{GroupConfig, GroupExecutor, GroupIterationReport, Interconnect, Policy};
use sn_sim::{DeviceSpec, SimTime};
use sn_telemetry::{MetricsRegistry, MetricsSnapshot, TraceData, TraceSink};

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Everything the experiment measures; tests assert on this directly.
pub struct TraceResult {
    pub dram_bytes: u64,
    pub group: GroupIterationReport,
    /// Busy/hidden link time re-derived purely from exported spans
    /// (device 0's link track intersected with its compute track).
    pub trace_busy_ns: u64,
    pub trace_hidden_ns: u64,
    pub cluster_submitted: usize,
    pub cluster_completed: usize,
    pub cluster_rejected: usize,
    pub check: sn_telemetry::TraceCheck,
    pub snapshot: MetricsSnapshot,
    pub data: TraceData,
}

impl TraceResult {
    pub fn trace_valid(&self) -> bool {
        self.check.is_valid() && self.check.spans > 0 && self.check.flows > 0
    }

    /// Trace-derived vs report-derived hidden-comm story, within 1 ns.
    pub fn overlap_matches(&self) -> bool {
        self.trace_busy_ns
            .abs_diff(self.group.allreduce_busy.as_ns())
            <= 1
            && self
                .trace_hidden_ns
                .abs_diff(self.group.allreduce_hidden.as_ns())
                <= 1
    }

    pub fn trace_overlap_fraction(&self) -> f64 {
        if self.trace_busy_ns == 0 {
            0.0
        } else {
            self.trace_hidden_ns as f64 / self.trace_busy_ns as f64
        }
    }

    /// Histogram totals equal the counters they shadow, and every
    /// histogram's bucket counts sum to its total.
    pub fn metrics_consistent(&self) -> bool {
        let s = &self.snapshot;
        let hist_count = |name: &str| s.histogram(name).map(|h| h.count).unwrap_or(u64::MAX);
        let ctr = |name: &str| s.counter(name).unwrap_or(0);
        let internally_consistent = s
            .histograms
            .iter()
            .all(|(_, h)| h.buckets.iter().sum::<u64>() == h.count);
        internally_consistent
            && hist_count("exec.iter_time_ns") == ctr("exec.iterations")
            && hist_count("cluster.latency_ns") == ctr("cluster.jobs.completed")
            && hist_count("cluster.queueing_ns") == ctr("cluster.jobs.admitted")
            && ctr("cluster.jobs.rejected")
                == ctr("cluster.rejects.empty_gang")
                    + ctr("cluster.rejects.fleet_too_small")
                    + ctr("cluster.rejects.peak_exceeds_capacity")
            && ctr("cluster.jobs.submitted") == self.cluster_submitted as u64
            && ctr("cluster.jobs.completed") == self.cluster_completed as u64
            && ctr("cluster.jobs.rejected") == self.cluster_rejected as u64
    }
}

/// Merge intervals into a sorted disjoint union.
fn union(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total intersection length of two disjoint sorted interval sets.
fn intersect_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Spans of the track named `name` under `process`, as intervals.
fn track_intervals(data: &TraceData, process: &str, name: &str) -> Vec<(u64, u64)> {
    let Some(idx) = data
        .tracks
        .iter()
        .position(|t| t.process == process && t.name == name)
    else {
        return Vec::new();
    };
    data.spans
        .iter()
        .filter(|s| s.track.0 as usize == idx)
        .map(|s| (s.start_ns, s.end_ns))
        .collect()
}

/// Run both parts into one shared sink + registry.
pub fn measure(quick: bool) -> TraceResult {
    let sink = TraceSink::recording();
    let registry = MetricsRegistry::new();

    // --- Part A: constrained 2-replica VGG16 group step ------------------
    let policy = Policy::superneurons();
    let net = models::vgg16(8);
    let cfg = GroupConfig::new(2, Interconnect::pcie());
    let mut picked = None;
    for dram in [2 * GB, 3 * GB, 4 * GB, 12 * GB] {
        let spec = DeviceSpec::k40c().with_dram(dram);
        if let Ok(gx) = GroupExecutor::new(&net, spec, policy, cfg) {
            picked = Some((gx, dram));
            break;
        }
    }
    let (mut gx, dram_bytes) = picked.expect("VGG16@8 must fit a 12 GB device");
    gx.run_iteration().expect("cold untraced iteration");
    gx.enable_tracing(&sink);
    gx.enable_metrics(&registry);
    let group = gx.run_iteration().expect("warm traced iteration");

    // Re-derive the overlap story from the exported spans alone: device 0's
    // link-track busy time and its intersection with the compute track.
    // (Computed from a mid-run snapshot; the sink keeps recording Part B,
    // and the returned `data` is re-read at the end so the artifact holds
    // the cluster tracks too.)
    let part_a = sink.data();
    let link = union(track_intervals(&part_a, "device 0", "link"));
    let compute = union(track_intervals(&part_a, "device 0", "compute"));
    let trace_busy_ns = link.iter().map(|(s, e)| e - s).sum();
    let trace_hidden_ns = intersect_len(&link, &compute);

    // --- Part B: a small cluster stream with a guaranteed rejection ------
    let fleet = Fleet::homogeneous(
        2,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    );
    let mut jobs = synthetic_stream(
        if quick { 10 } else { 24 },
        7,
        PolicyPreset::Superneurons,
        true,
    );
    // A gang wider than the fleet: permanently unschedulable, so the reject
    // track/counters are exercised on every run.
    jobs.push((
        SimTime::ZERO,
        JobSpec::new(
            "gang-too-wide",
            Workload::Synthetic { width: 8, depth: 2 },
            8,
        )
        .with_replicas(4)
        .with_downgrade(false),
    ));
    let submitted = jobs.len();
    let mut sim = ClusterSim::new(fleet, PlacementPolicy::BestFit);
    sim.enable_tracing(&sink);
    sim.enable_metrics(&registry);
    let creport = sim.run(jobs);

    TraceResult {
        dram_bytes,
        group,
        trace_busy_ns,
        trace_hidden_ns,
        cluster_submitted: submitted,
        cluster_completed: creport.completed,
        cluster_rejected: creport.rejected,
        check: sink.validate(),
        snapshot: registry.snapshot(),
        data: sink.data(),
    }
}

/// Run the experiment; writes `BENCH_trace.json` (gates + embedded metrics
/// snapshot) and the Perfetto-loadable `BENCH_trace.trace.json`.
pub fn trace(quick: bool) -> String {
    let sink_json = {
        // The exported artifact must include the cluster tracks, so re-run
        // measure() against one sink and export at the end.
        let r = measure(quick);
        let trace_valid = r.trace_valid();
        let metrics_consistent = r.metrics_consistent();
        let overlap_matches = r.overlap_matches();

        let mut out = format!(
            "trace: unified telemetry — 2-replica VGG16 gang on a {} MB device \
             + a {}-job cluster stream, one shared sink/registry\n\n",
            r.dram_bytes / MB,
            r.cluster_submitted,
        );
        out.push_str(&format!(
            "timeline: {} tracks, {} spans, {} instants, {} flow arrows\n",
            r.check.tracks, r.check.spans, r.check.instants, r.check.flows
        ));
        for e in r.check.errors.iter().take(5) {
            out.push_str(&format!("  INVARIANT VIOLATION: {e}\n"));
        }
        out.push_str(&format!(
            "group step {:.3} ms: allreduce busy {} ns / hidden {} ns \
             (report) vs {} ns / {} ns (from exported spans)\n",
            r.group.step_time.as_ms_f64(),
            r.group.allreduce_busy.as_ns(),
            r.group.allreduce_hidden.as_ns(),
            r.trace_busy_ns,
            r.trace_hidden_ns,
        ));
        out.push_str(&format!(
            "hidden-comm fraction: {:.4} (report) vs {:.4} (trace)\n",
            r.group.allreduce_overlap_fraction(),
            r.trace_overlap_fraction(),
        ));
        out.push_str(&format!(
            "cluster: {} submitted / {} completed / {} rejected\n\n",
            r.cluster_submitted, r.cluster_completed, r.cluster_rejected
        ));
        out.push_str(&format!(
            "trace_valid: {trace_valid}\nmetrics_consistent: {metrics_consistent}\n\
             overlap_matches: {overlap_matches}\n"
        ));

        let json = format!(
            "{{\"experiment\":\"trace\",\"trace_valid\":{trace_valid},\
             \"metrics_consistent\":{metrics_consistent},\
             \"overlap_matches\":{overlap_matches},\
             \"dram_bytes\":{},\"tracks\":{},\"spans\":{},\"instants\":{},\
             \"flows\":{},\"report_allreduce_busy_ns\":{},\
             \"report_allreduce_hidden_ns\":{},\"trace_allreduce_busy_ns\":{},\
             \"trace_allreduce_hidden_ns\":{},\"overlap_fraction_report\":{:.6},\
             \"overlap_fraction_trace\":{:.6},\"cluster_submitted\":{},\
             \"cluster_completed\":{},\"cluster_rejected\":{},\"metrics\":{}}}",
            r.dram_bytes,
            r.check.tracks,
            r.check.spans,
            r.check.instants,
            r.check.flows,
            r.group.allreduce_busy.as_ns(),
            r.group.allreduce_hidden.as_ns(),
            r.trace_busy_ns,
            r.trace_hidden_ns,
            r.group.allreduce_overlap_fraction(),
            r.trace_overlap_fraction(),
            r.cluster_submitted,
            r.cluster_completed,
            r.cluster_rejected,
            r.snapshot.to_json(),
        );
        match std::fs::write("BENCH_trace.json", &json) {
            Ok(()) => out.push_str("wrote BENCH_trace.json\n"),
            Err(e) => out.push_str(&format!("could not write BENCH_trace.json: {e}\n")),
        }
        let chrome = r.data.export_chrome_json();
        match std::fs::write("BENCH_trace.trace.json", &chrome) {
            Ok(()) => out.push_str(
                "wrote BENCH_trace.trace.json (open at https://ui.perfetto.dev or \
                 chrome://tracing)\n",
            ),
            Err(e) => out.push_str(&format!("could not write BENCH_trace.trace.json: {e}\n")),
        }
        out
    };
    sink_json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_helpers() {
        assert_eq!(union(vec![(5, 9), (0, 3), (2, 4)]), vec![(0, 4), (5, 9)]);
        assert_eq!(intersect_len(&[(0, 10)], &[(2, 4), (8, 20)]), 4);
        assert_eq!(intersect_len(&[(0, 2)], &[(2, 4)]), 0);
        assert_eq!(intersect_len(&[], &[(0, 5)]), 0);
    }

    #[test]
    fn trace_experiment_holds_every_gate() {
        let r = measure(true);
        assert!(
            r.check.is_valid(),
            "trace invariants violated: {:?}",
            r.check.errors
        );
        assert!(r.check.spans > 0 && r.check.flows > 0);
        assert!(
            r.overlap_matches(),
            "trace busy/hidden {}/{} vs report {}/{}",
            r.trace_busy_ns,
            r.trace_hidden_ns,
            r.group.allreduce_busy.as_ns(),
            r.group.allreduce_hidden.as_ns()
        );
        assert!(r.metrics_consistent());
        // The guaranteed-impossible gang really was rejected, and the
        // structured reason is countable.
        assert!(r.cluster_rejected >= 1);
        assert!(
            r.snapshot
                .counter("cluster.rejects.fleet_too_small")
                .unwrap_or(0)
                >= 1
        );
        // Both replicas flushed exec metrics for the traced iteration.
        assert_eq!(r.snapshot.counter("exec.iterations"), Some(2));
        // The gang actually hid communication, and the trace shows it.
        assert!(r.group.allreduce_busy > SimTime::ZERO);
        assert!(r.trace_hidden_ns > 0);
        // The exported data holds BOTH parts: per-device engine tracks and
        // the per-tenant cluster tracks with their arrive/reject instants.
        assert!(r.data.tracks.iter().any(|t| t.process == "device 0"));
        assert!(r.data.tracks.iter().any(|t| t.process == "cluster"));
        assert!(!r.data.instants.is_empty());
    }
}
