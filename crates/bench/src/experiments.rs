//! One function per table/figure of the SuperNeurons evaluation.
//!
//! Absolute numbers come from our simulated substrate (see DESIGN.md for the
//! substitutions); what these reproduce is the paper's *shape*: which
//! technique/framework wins, by roughly what factor, and where the memory
//! knees fall. EXPERIMENTS.md records paper-vs-measured for every artefact.

use sn_frameworks::Framework;
use sn_graph::{Net, NetCost};
use sn_models as models;
use sn_runtime::session::Session;
use sn_runtime::{convalgo, Executor, Policy, RecomputeMode};
use sn_sim::spec::GB;
use sn_sim::DeviceSpec;

use crate::table::{gb, mb, TextTable};

fn k40() -> DeviceSpec {
    DeviceSpec::k40c()
}

fn titan() -> DeviceSpec {
    DeviceSpec::titan_xp()
}

/// The evaluation networks with the batch sizes Fig. 2 uses
/// (AlexNet 200, the rest 32).
fn fig2_nets() -> Vec<(String, Net)> {
    vec![
        ("AlexNet".into(), models::alexnet(200)),
        ("VGG16".into(), models::vgg16(32)),
        ("VGG19".into(), models::vgg19(32)),
        ("InceptionV4".into(), models::inception_v4(32)),
        ("ResNet50".into(), models::resnet50(32)),
        ("ResNet101".into(), models::resnet101(32)),
        ("ResNet152".into(), models::resnet152(32)),
    ]
}

/// Network-wide conv workspace bytes when every conv picks its max-speed
/// algorithm (the "with conv buff" bars of Fig. 2).
fn max_speed_workspace(net: &Net) -> u64 {
    net.layers()
        .iter()
        .filter(|l| matches!(l.kind, sn_graph::LayerKind::Conv { .. }))
        .map(|l| convalgo::max_speed_algo(net, l.id).workspace)
        .sum()
}

/// Fig. 2 — per-network training memory with/without convolution
/// workspaces, and the speedup convolution workspaces buy.
pub fn fig2() -> String {
    let mut t = TextTable::new(vec![
        "network",
        "batch",
        "mem (MB)",
        "mem+convbuff (MB)",
        "speedup w/ conv buff",
    ]);
    for (name, net) in fig2_nets() {
        let batch = net.batch();
        let cost = NetCost::of(&net);
        let mem = cost.sum_l_f() + cost.sum_l_b() + cost.total_weight_bytes();
        let mem_ws = mem + max_speed_workspace(&net);
        // Speedup: SuperNeurons on the TITAN Xp, dynamic workspaces vs none.
        let slow = Session::new(
            net.clone(),
            titan(),
            Policy {
                workspace: sn_runtime::WorkspacePolicy::None,
                ..Policy::superneurons()
            },
        )
        .run();
        let fast = Session::new(net, titan(), Policy::superneurons()).run();
        let speedup = match (&slow, &fast) {
            (Ok(s), Ok(f)) => format!("{:.2}x", f.imgs_per_sec / s.imgs_per_sec),
            _ => "OOM".into(),
        };
        t.row(vec![name, format!("{batch}"), mb(mem), mb(mem_ws), speedup]);
    }
    format!(
        "Fig. 2 — memory usage and speedup with convolution workspaces\n{}",
        t.render()
    )
}

/// Fig. 8 — breakdown of execution time and memory usage by layer type.
pub fn fig8() -> String {
    let nets: Vec<(String, Net)> = vec![
        ("AlexNet".into(), models::alexnet(128)),
        ("InceptionV4".into(), models::inception_v4(16)),
        ("ResNet101".into(), models::resnet101(16)),
        ("ResNet152".into(), models::resnet152(16)),
        ("ResNet50".into(), models::resnet50(16)),
        ("VGG16".into(), models::vgg16(16)),
        ("VGG19".into(), models::vgg19(16)),
    ];
    let spec = titan();
    let mut out =
        String::from("Fig. 8 — % of compute time (fwd+bwd) and % of memory by layer type\n");
    let mut t = TextTable::new(vec![
        "network", "metric", "CONV", "FC", "DROPOUT", "SOFTMAX", "POOL", "ACT", "BN", "LRN",
        "other",
    ]);
    for (name, net) in nets {
        let cost = NetCost::of(&net);
        let rows = cost.breakdown_by_type(&net, &spec);
        let total_t: u64 = rows.iter().map(|r| r.1).sum();
        let total_m: u64 = rows.iter().map(|r| r.2).sum();
        let pick = |metric: usize, ty: &str| -> f64 {
            let v = rows
                .iter()
                .filter(|r| r.0 == ty)
                .map(|r| if metric == 0 { r.1 } else { r.2 })
                .sum::<u64>() as f64;
            let tot = if metric == 0 { total_t } else { total_m } as f64;
            100.0 * v / tot
        };
        let other = |metric: usize| -> f64 {
            let known = [
                "CONV", "FC", "DROPOUT", "SOFTMAX", "POOL", "ACT", "BN", "LRN",
            ];
            let v: u64 = rows
                .iter()
                .filter(|r| !known.contains(&r.0.as_str()))
                .map(|r| if metric == 0 { r.1 } else { r.2 })
                .sum();
            100.0 * v as f64 / if metric == 0 { total_t } else { total_m } as f64
        };
        for (mi, mname) in [(0usize, "time%"), (1, "mem%")] {
            t.row(vec![
                name.clone(),
                mname.to_string(),
                format!("{:.1}", pick(mi, "CONV")),
                format!("{:.1}", pick(mi, "FC")),
                format!("{:.1}", pick(mi, "DROPOUT")),
                format!("{:.1}", pick(mi, "SOFTMAX")),
                format!("{:.1}", pick(mi, "POOL")),
                format!("{:.1}", pick(mi, "ACT")),
                format!("{:.1}", pick(mi, "BN")),
                format!("{:.1}", pick(mi, "LRN")),
                format!("{:.1}", other(mi)),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Fig. 10 — stepwise memory usage and live tensor counts on AlexNet@200
/// under (a) liveness, (b) +prefetch/offload, (c) +cost-aware recomputation,
/// against the naive baseline.
pub fn fig10() -> String {
    let mut out =
        String::from("Fig. 10 — stepwise memory and live tensors, AlexNet batch 200 (K40c)\n");
    let spec = k40();
    let baseline = {
        let net = models::alexnet(200);
        let mut ex = Executor::new(&net, spec.clone(), Policy::baseline()).unwrap();
        ex.run_iteration().unwrap()
    };
    out.push_str(&format!(
        "baseline: peak = {} MB ({} tensors)\n\n",
        mb(baseline.peak_bytes),
        {
            let net = models::alexnet(200);
            let ex = Executor::new(&net, spec.clone(), Policy::baseline()).unwrap();
            ex.plan.tensors.len()
        }
    ));

    for (panel, policy) in [
        ("(a) liveness", Policy::liveness_only()),
        (
            "(b) liveness + prefetch/offload",
            Policy::liveness_offload(),
        ),
        ("(c) + cost-aware recomputation", Policy::full_memory()),
    ] {
        let net = models::alexnet(200);
        let mut ex = Executor::new(&net, spec.clone(), policy).unwrap();
        let r = ex.run_iteration().unwrap();
        let peak_rec = ex.trace.peak_step().unwrap().clone();
        out.push_str(&format!(
            "{panel}: peak_m = {} MB at step {} ({} {})   [{:.1}% of baseline]\n",
            mb(r.peak_bytes),
            peak_rec.step,
            peak_rec.layer,
            match peak_rec.phase {
                sn_sim::trace::Phase::Forward => "fwd",
                sn_sim::trace::Phase::Backward => "bwd",
            },
            100.0 * r.peak_bytes as f64 / baseline.peak_bytes as f64,
        ));
        out.push_str("  step series (step:layer:MB:live): ");
        for rec in &ex.trace.records {
            out.push_str(&format!(
                "{}:{}:{}:{} ",
                rec.step,
                rec.layer,
                (rec.resident_bytes / 1_000_000),
                rec.live_tensors
            ));
        }
        out.push_str("\n\n");
    }
    let net = models::alexnet(200);
    let cost = NetCost::of(&net);
    out.push_str(&format!(
        "l_peak = max(l_i) = {} MB at layer {}\n",
        mb(cost.l_peak() + cost.total_weight_bytes()),
        net.layer(cost.l_peak_layer()).name
    ));
    out
}

/// Table 1 — extra recomputations and peak_m for the speed-centric,
/// memory-centric and cost-aware strategies.
pub fn table1() -> String {
    let nets: Vec<(String, Net)> = vec![
        ("AlexNet".into(), models::alexnet(128)),
        ("ResNet50".into(), models::resnet50(16)),
        ("ResNet101".into(), models::resnet101(16)),
    ];
    let mut t = TextTable::new(vec![
        "network",
        "speed extra",
        "speed peak(MB)",
        "memory extra",
        "memory peak(MB)",
        "cost-aware extra",
        "cost-aware peak(MB)",
    ]);
    for (name, net) in nets {
        let mut cells = vec![name];
        for mode in [
            RecomputeMode::SpeedCentric,
            RecomputeMode::MemoryCentric,
            RecomputeMode::CostAware,
        ] {
            let policy = Policy {
                recompute: mode,
                ..Policy::full_memory()
            };
            let mut ex = Executor::new(&net, k40(), policy).unwrap();
            let r = ex.run_iteration().unwrap();
            cells.push(format!("{}", r.counters.recompute_forwards));
            cells.push(mb(r.peak_bytes));
        }
        t.row(cells);
    }
    format!(
        "Table 1 — recomputation strategies (AlexNet@128, ResNet50/101@16, K40c)\n{}",
        t.render()
    )
}

/// Table 2 — img/s with raw cudaMalloc/cudaFree vs. the heap memory pool.
pub fn table2() -> String {
    let nets: Vec<(String, Net)> = vec![
        ("AlexNet".into(), models::alexnet(128)),
        ("VGG16".into(), models::vgg16(16)),
        ("InceptionV4".into(), models::inception_v4(16)),
        ("ResNet50".into(), models::resnet50(16)),
        ("ResNet101".into(), models::resnet101(16)),
        ("ResNet152".into(), models::resnet152(16)),
    ];
    let mut t = TextTable::new(vec!["img/s", "CUDA", "Ours", "speedup", "alloc calls/iter"]);
    let mut out = vec![];
    for (name, net) in nets {
        let cuda = Session::new(net.clone(), titan(), Policy::superneurons_cuda_alloc())
            .run()
            .unwrap();
        let pool = Session::new(net, titan(), Policy::superneurons())
            .run()
            .unwrap();
        out.push((
            name.clone(),
            cuda.imgs_per_sec,
            pool.imgs_per_sec,
            pool.alloc_calls,
        ));
        t.row(vec![
            name,
            format!("{:.1}", cuda.imgs_per_sec),
            format!("{:.1}", pool.imgs_per_sec),
            format!("{:.2}x", pool.imgs_per_sec / cuda.imgs_per_sec),
            format!("{}", pool.alloc_calls),
        ]);
    }
    format!(
        "Table 2 — GPU memory pool vs cudaMalloc/cudaFree (AlexNet@128, rest @16, TITAN Xp)\n{}",
        t.render()
    )
}

/// Table 3 — PCIe traffic per iteration with and without the Tensor Cache,
/// AlexNet at growing batch sizes.
pub fn table3() -> String {
    let mut t = TextTable::new(vec!["batch", "without cache (GB)", "with cache (GB)"]);
    for batch in [256usize, 384, 512, 640, 896, 1024, 1536, 2048, 2560] {
        let net = models::alexnet(batch);
        let no_cache = Session::new(net.clone(), k40(), Policy::superneurons_no_cache()).run();
        let cache = Session::new(net, k40(), Policy::superneurons()).run();
        let f = |r: &Result<sn_runtime::SessionReport, _>| match r {
            Ok(rep) => gb(rep.traffic_per_iter()),
            Err(_) => "OOM".into(),
        };
        t.row(vec![format!("{batch}"), f(&no_cache), f(&cache)]);
    }
    format!(
        "Table 3 — communications with/without the Tensor Cache (AlexNet, K40c 12GB)\n{}",
        t.render()
    )
}

/// Fig. 11 — normalized training speed with and without the Tensor Cache.
pub fn fig11() -> String {
    let nets: Vec<(String, Net)> = vec![
        ("AlexNet".into(), models::alexnet(128)),
        ("VGG16".into(), models::vgg16(32)),
        ("InceptionV4".into(), models::inception_v4(32)),
        ("ResNet50".into(), models::resnet50(32)),
        ("ResNet101".into(), models::resnet101(32)),
        ("ResNet152".into(), models::resnet152(32)),
    ];
    let mut t = TextTable::new(vec!["network", "without cache", "with cache"]);
    for (name, net) in nets {
        let without = Session::new(net.clone(), titan(), Policy::superneurons_no_cache())
            .run()
            .unwrap();
        let with = Session::new(net, titan(), Policy::superneurons())
            .run()
            .unwrap();
        let norm = without.imgs_per_sec / with.imgs_per_sec;
        t.row(vec![name, format!("{norm:.2}"), "1.00".into()]);
    }
    format!(
        "Fig. 11 — normalized speed without/with Tensor Cache (AlexNet@128, rest @32, TITAN Xp)\n{}",
        t.render()
    )
}

/// Fig. 12 — dynamic convolution workspace allocation under constrained
/// memory pools.
pub fn fig12() -> String {
    let mut out = String::from("Fig. 12 — dynamic conv workspace allocation (AlexNet)\n");
    let run = |batch: usize, pool_gb: u64| -> (String, f64) {
        let net = models::alexnet(batch);
        let spec = titan().with_dram(pool_gb * GB);
        let mut ex = Executor::new(&net, spec, Policy::superneurons()).unwrap();
        ex.run_iteration().unwrap();
        let r = ex.run_iteration().unwrap();
        let mut s = String::new();
        for rec in &ex.ws_records {
            s.push_str(&format!(
                "  {:7} {:4} assigned {:>8} MB  max-speed {:>8} MB  algo {:13} ({:.2}x)\n",
                rec.name,
                match rec.phase {
                    sn_sim::trace::Phase::Forward => "fwd",
                    sn_sim::trace::Phase::Backward => "bwd",
                },
                mb(rec.assigned_bytes),
                mb(rec.max_speed_bytes),
                rec.algo,
                rec.speedup
            ));
        }
        (s, r.imgs_per_sec(batch))
    };
    let (s, ips) = run(100, 3);
    out.push_str(&format!("(a) batch=100, pool=3GB  ->  {ips:.0} img/s\n{s}"));
    // The paper hits workspace pressure at batch 300 on its (heavier)
    // functional-tensor footprint; on our substrate the same knee appears
    // around batch 480 — the behaviour (dynamic downgrades, then recovery
    // with a larger pool) is the artefact being reproduced.
    let (s, ips) = run(480, 3);
    out.push_str(&format!(
        "(b/c) batch=480, pool=3GB  ->  {ips:.0} img/s\n{s}"
    ));
    let (s, ips) = run(480, 5);
    out.push_str(&format!("(d) batch=480, pool=5GB  ->  {ips:.0} img/s\n{s}"));
    out
}

/// Table 4 — the deepest trainable ResNet per framework (12 GB, batch 16).
pub fn table4(quick: bool) -> String {
    let hi = if quick { 500 } else { 8000 };
    let batch = if quick { 4 } else { 16 };
    let mut t = TextTable::new(vec!["framework", "deepest ResNet"]);
    let mut sn_depth = 0;
    let mut best_other = 0;
    for fw in Framework::ALL {
        let d = sn_frameworks::max_resnet_depth(fw, batch, &k40(), hi);
        if fw == Framework::SuperNeurons {
            sn_depth = d;
        } else {
            best_other = best_other.max(d);
        }
        t.row(vec![fw.name().to_string(), format!("{d}")]);
    }
    format!(
        "Table 4 — going deeper: deepest ResNet at batch {batch} on 12GB K40c (search cap {hi})\n{}\nSuperNeurons / best baseline = {:.2}x\n",
        t.render(),
        sn_depth as f64 / best_other.max(1) as f64
    )
}

/// The per-network search caps for Table 5.
fn table5_nets(quick: bool) -> Vec<(&'static str, models::NetBuilder, usize)> {
    if quick {
        vec![
            ("AlexNet", models::alexnet as models::NetBuilder, 4096),
            ("ResNet50", models::resnet50, 1024),
        ]
    } else {
        vec![
            ("AlexNet", models::alexnet as models::NetBuilder, 8192),
            ("VGG16", models::vgg16, 1024),
            ("InceptionV4", models::inception_v4, 1024),
            ("ResNet50", models::resnet50, 2048),
            ("ResNet101", models::resnet101, 2048),
            ("ResNet152", models::resnet152, 2048),
        ]
    }
}

/// Table 5 — the largest trainable batch per framework per network (12 GB).
pub fn table5(quick: bool) -> String {
    let mut header = vec!["peak batch".to_string()];
    header.extend(Framework::ALL.iter().map(|f| f.name().to_string()));
    let mut t = TextTable::new(header);
    let mut report = String::new();
    for (name, build, hi) in table5_nets(quick) {
        let mut cells = vec![name.to_string()];
        let mut results = vec![];
        for fw in Framework::ALL {
            let b = sn_frameworks::max_batch(fw, &build, &k40(), hi);
            results.push((fw, b));
            cells.push(format!("{b}"));
        }
        let sn = results
            .iter()
            .find(|(f, _)| *f == Framework::SuperNeurons)
            .unwrap()
            .1;
        let second = results
            .iter()
            .filter(|(f, _)| *f != Framework::SuperNeurons)
            .map(|(_, b)| *b)
            .max()
            .unwrap();
        report.push_str(&format!(
            "  {name}: SuperNeurons {sn} vs best baseline {second} ({:.2}x)\n",
            sn as f64 / second.max(1) as f64
        ));
        t.row(cells);
    }
    format!(
        "Table 5 — going wider: largest batch on 12GB K40c\n{}\n{report}",
        t.render()
    )
}

/// Fig. 13 — memory requirement (Σ l_f + Σ l_b, the paper's formula) at the
/// Table-5 peak batches.
pub fn fig13(quick: bool) -> String {
    let mut header = vec!["memory (GB)".to_string()];
    header.extend(Framework::ALL.iter().map(|f| f.name().to_string()));
    let mut t = TextTable::new(header);
    for (name, build, hi) in table5_nets(quick) {
        let mut cells = vec![name.to_string()];
        for fw in Framework::ALL {
            let b = sn_frameworks::max_batch(fw, &build, &k40(), hi);
            if b == 0 {
                cells.push("-".into());
                continue;
            }
            let net = build(b);
            let cost = NetCost::of(&net);
            cells.push(gb(cost.sum_l_f()
                + cost.sum_l_b()
                + cost.total_weight_bytes()));
        }
        t.row(cells);
    }
    format!(
        "Fig. 13 — memory cost at each framework's peak batch (Σ l_f + Σ l_b + weights)\n{}",
        t.render()
    )
}

/// The batch grids of Fig. 14's six panels.
fn fig14_grid(name: &str, quick: bool) -> Vec<usize> {
    let full: Vec<usize> = match name {
        "AlexNet" => vec![128, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408],
        "ResNet50" => vec![16, 32, 48, 64, 96, 128, 160, 192, 256, 320, 384],
        "VGG16" => vec![16, 32, 48, 64, 80, 96, 128, 160, 192, 224],
        "ResNet101" => vec![16, 32, 48, 64, 80, 96, 112, 160, 224, 256],
        "InceptionV4" => vec![8, 16, 24, 32, 48, 64, 80, 128, 192, 240],
        "ResNet152" => vec![8, 16, 24, 32, 48, 64, 80, 128, 176],
        _ => vec![16, 32, 64],
    };
    if quick {
        full.into_iter().take(3).collect()
    } else {
        full
    }
}

/// Fig. 14 — end-to-end img/s vs batch for every network × framework
/// (TITAN Xp). A `-` marks out-of-memory points (the curve's end).
pub fn fig14(quick: bool) -> String {
    let nets: Vec<(&str, models::NetBuilder)> = if quick {
        vec![("AlexNet", models::alexnet as models::NetBuilder)]
    } else {
        models::evaluation_networks()
    };
    let mut out = String::from("Fig. 14 — training speed (img/s) vs batch size (TITAN Xp, 12GB)\n");
    for (name, build) in nets {
        out.push_str(&format!("\n## {name}\n"));
        let grid = fig14_grid(name, quick);
        let mut header = vec!["batch".to_string()];
        header.extend(grid.iter().map(|b| b.to_string()));
        let mut t = TextTable::new(header);
        for fw in Framework::ALL {
            let mut cells = vec![fw.name().to_string()];
            for &b in &grid {
                let r = Session::new(build(b), titan(), fw.policy()).run();
                cells.push(match r {
                    Ok(rep) => format!("{:.0}", rep.imgs_per_sec),
                    Err(_) => "-".into(),
                });
            }
            t.row(cells);
        }
        out.push_str(&t.render());
    }
    out
}

/// Run every experiment (quick mode trims the searches).
pub fn run_all(quick: bool) -> String {
    let mut out = String::new();
    for (id, text) in [
        ("fig2", fig2()),
        ("fig8", fig8()),
        ("fig10", fig10()),
        ("table1", table1()),
        ("table2", table2()),
        ("table3", table3()),
        ("fig11", fig11()),
        ("fig12", fig12()),
        ("table4", table4(quick)),
        ("table5", table5(quick)),
        ("fig13", fig13(quick)),
        ("fig14", fig14(quick)),
        ("overlap", crate::overlap::overlap(quick)),
        ("cluster", crate::cluster::cluster(quick)),
        ("plan", crate::plan::plan(quick)),
        ("compile", crate::compile::compile(quick)),
        ("dataparallel", crate::dataparallel::dataparallel(quick)),
        ("precision", crate::precision::precision(quick)),
        ("trace", crate::trace::trace(quick)),
        ("service", crate::service::service(quick)),
        ("faults", crate::faults::faults(quick)),
        ("tune", crate::tune::tune(quick)),
    ] {
        out.push_str(&format!(
            "\n==================== {id} ====================\n"
        ));
        out.push_str(&text);
    }
    out
}
