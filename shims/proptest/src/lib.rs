//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements the same surface syntax — `proptest! { #![proptest_config(..)]
//! #[test] fn f(x in strategy) { .. } }`, `prop_oneof!`, `prop_assert!`,
//! `Strategy::prop_map`, `collection::vec`, `bool::ANY` — as a deterministic
//! random-case runner. Differences from the real crate, deliberately
//! accepted for an offline build:
//!
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   assertion message instead of a minimized counterexample;
//! * **fixed seeding** — cases derive from a per-test seed (hash of the test
//!   name), so runs are reproducible without a `proptest-regressions` file;
//! * `PROPTEST_CASES` caps the per-test case count from the environment so
//!   CI can bound total runtime.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of values. The real crate's `Strategy` also carries a
    /// shrinking `ValueTree`; the shim only generates.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// One weighted `prop_oneof!` alternative: `(weight, generator)`.
    pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted union over same-valued strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
        total: u64,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<UnionArm<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.0.gen_range(0u64..self.total);
            for (w, arm) in &self.arms {
                if pick < *w as u64 {
                    return arm(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A 0, B 1), (A 0, B 1, C 2), (A 0, B 1, C 2, D 3));
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The per-test RNG. Wraps the workspace's deterministic `SmallRng`.
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        /// Deterministic seed from the test's name: reruns regenerate the
        /// same case sequence with no persistence file.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }

    /// Runner configuration. Only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Case count after the `PROPTEST_CASES` environment cap.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
            {
                Some(cap) => self.cases.min(cap),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure: the property is false.
        Fail(String),
        /// `prop_assume!` rejection: the case does not count.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __strategy = $strat;
                (
                    $weight as u32,
                    ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__strategy, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed = 0u32;
            let mut attempts = 0u32;
            let max_attempts = cases.saturating_mul(10).saturating_add(100);
            while passed < cases {
                assert!(
                    attempts < max_attempts,
                    "gave up after {attempts} attempts ({passed}/{cases} cases passed): \
                     too many prop_assume! rejections"
                );
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case_inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs:\n{}",
                            passed + 1,
                            cases,
                            msg,
                            case_inputs
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn union_respects_weights_and_map_applies() {
        let s = prop_oneof![
            3 => Just(0usize),
            1 => (10usize..20).prop_map(|v| v),
        ];
        let mut rng = TestRng::for_test("union");
        let mut saw_zero = false;
        let mut saw_range = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                0 => saw_zero = true,
                v if (10usize..20).contains(&v) => saw_range = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(saw_zero && saw_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vectors_respect_bounds(
            v in crate::collection::vec(1usize..10, 1..20),
            flag in crate::bool::ANY,
        ) {
            prop_assume!(v.len() < 19);
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|x| (1..10).contains(x)), "out of range: {v:?}");
            prop_assert_eq!(flag & !flag, false, "flag={flag}");
        }
    }
}
