//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize`/`Deserialize` as no-op derive macros so the workspace
//! compiles without crates.io access. No code in this repository serializes
//! through serde yet (JSON artifacts are emitted by the hand-rolled writer in
//! `sn-cluster`); the derives exist so the public structs keep their
//! wire-format-ready shape for downstream users.

pub use serde_derive::{Deserialize, Serialize};
