//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng::seed_from_u64` and `Rng::gen_range` over integer and float
//! ranges. Every generator is explicitly seeded (the kernels demand
//! reproducibility), so no OS entropy source is needed — which is also why a
//! self-contained implementation is sound here.
//!
//! The engine is xoshiro256** seeded through splitmix64, matching the
//! construction (though not the exact stream) of the real `SmallRng`.

use std::ops::{Range, RangeInclusive};

/// Core source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// A range that knows how to draw a sample from it.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(isize => usize, i64 => u64, i32 => u32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and plenty for test-data generation.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<usize> = (0..16).map(|_| a.gen_range(0usize..1 << 30)).collect();
        let vb: Vec<usize> = (0..16).map(|_| b.gen_range(0usize..1 << 30)).collect();
        assert_ne!(va, vb);
    }
}
