//! Offline stand-in for the `rustc-hash`/`fxhash` crates: the Firefox/rustc
//! "Fx" multiply-and-rotate hash.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 — a keyed, DoS-resistant
//! function that costs tens of cycles even for a `u64` key. The maps this
//! workspace keeps on hot paths (allocation-id tables, admission memo keys,
//! plan-memo keys) are keyed by small integers or short structs produced
//! internally, so HashDoS resistance buys nothing and the SipHash setup cost
//! dominates. Fx hashing is a single multiply + rotate per word, fully
//! deterministic (no per-process random state), which also keeps anything
//! iteration-order-dependent reproducible across runs.
//!
//! The constant is the golden-ratio multiplier rustc uses
//! (`0x51_7c_c1_b7_27_22_0a_95` for 64-bit words).

use std::hash::{BuildHasherDefault, Hasher};

/// Seed multiplier (64-bit golden ratio, as in rustc's `FxHasher`).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The Fx hasher: one wrapping multiply and a rotate per ingested word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`] (no per-map random seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash one value with a seeded [`FxHasher`] — the workspace's fingerprint
/// primitive (two different seeds give two near-independent digests).
pub fn hash_with_seed<T: std::hash::Hash>(value: &T, seed: u64) -> u64 {
    let mut h = FxHasher { hash: seed };
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&1998));
        let s: FxHashSet<u64> = (0..100).collect();
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        let a = hash_with_seed(&(17u64, "abc"), 0);
        let b = hash_with_seed(&(17u64, "abc"), 0);
        assert_eq!(a, b);
        // Distinct seeds must decorrelate the digests.
        assert_ne!(a, hash_with_seed(&(17u64, "abc"), 1));
        // Distinct values must (overwhelmingly) differ.
        assert_ne!(a, hash_with_seed(&(18u64, "abc"), 0));
    }

    #[test]
    fn sequential_integer_keys_spread() {
        // The SipHash-replacement claim: sequential u64 keys land in
        // distinct buckets (no catastrophic clustering of low bits).
        let hashes: FxHashSet<u64> = (0..4096u64).map(|i| hash_with_seed(&i, 0)).collect();
        assert_eq!(hashes.len(), 4096);
    }
}
