//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the same authoring surface (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups, `Throughput`, `black_box`)
//! but a much simpler measurement loop: one warm-up call, then timed batches
//! until ~`MEASURE_BUDGET` of wall-clock has accumulated, reporting the mean.
//! No statistical analysis, plots, or HTML reports — the goal is a stable
//! smoke-number per benchmark so `cargo bench` keeps working offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock budget for the measurement loop.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            max_iters: self.sample_size,
        };
        f(&mut b);
        let mean_ns = if b.iters_done == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters_done as f64
        };
        println!(
            "bench {name}: {} iters, mean {}",
            b.iters_done,
            format_ns(mean_ns)
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
        }
    }
}

/// A named group of benchmarks; `sample_size`/`throughput` are accepted for
/// API compatibility (`sample_size` caps the iteration count).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name.into());
        self.criterion.bench_function(full, f);
        self
    }

    pub fn finish(&mut self) {
        self.criterion.sample_size = None;
    }
}

/// Declared element-or-byte throughput; recorded only for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs and times the benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    max_iters: Option<usize>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let cap = self.max_iters.unwrap_or(usize::MAX) as u64;
        while self.elapsed < MEASURE_BUDGET && self.iters_done < cap {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(
            runs >= 3,
            "warm-up plus at least sample_size iters, got {runs}"
        );
    }
}
