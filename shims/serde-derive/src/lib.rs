//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes (the derives only keep the structs ready for
//! a future wire format), so the derive macros accept the attribute syntax
//! and expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
