//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Two tiers:
//!
//! * The tensor kernels call `par_iter` / `par_iter_mut` / `par_chunks` /
//!   `par_chunks_mut` and then plain `Iterator` combinators (`zip`,
//!   `enumerate`, `for_each`). Sequential execution is semantically
//!   identical for these data-parallel loops (every closure touches a
//!   disjoint region), so the shim maps each `par_*` method to its `std`
//!   sequential counterpart. Numeric results are bit-identical to the
//!   parallel version because the reduction order within one chunk never
//!   changes.
//!
//! * The **planner sweep surfaces** (admission ladders, feasibility
//!   searches, bench compile matrices) need real concurrency — each work
//!   item compiles an independent memory plan. [`par_map`] and [`join`]
//!   run on genuine `std::thread::scope` workers draining a shared atomic
//!   work queue, with results returned in input order, so sweeps scale with
//!   the host's cores while staying deterministic.

pub mod prelude {
    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count [`par_map`] spreads over (the machine's available
/// parallelism; 1 means everything degenerates to the sequential path).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run both closures, potentially in parallel, returning both results —
/// `rayon::join` with a scoped thread for the second branch.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join branch panicked"))
    })
}

/// Map `f` over `items` on a scoped worker pool, returning results **in
/// input order**. The equivalent of `items.par_iter().map(f).collect()` in
/// real rayon. Workers drain one shared atomic index, so uneven item costs
/// balance themselves; with one hardware thread (or ≤1 item) it runs
/// inline with zero thread overhead.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_workers(items, current_num_threads(), f)
}

/// [`par_map`] with an explicit worker count, independent of the machine's
/// hardware parallelism. The determinism contract of callers like the
/// autotuner is "same inputs ⇒ same outputs for **any** worker count" —
/// this entry point lets tests exercise that on a single-core host.
pub fn par_map_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = workers.min(n);
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(out[i].is_none());
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|o| o.expect("par_map left a hole"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let doubled = super::par_map(&items, |x| x * 2);
        assert_eq!(doubled.len(), items.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, 2 * i as u64);
        }
        // Empty and single-item inputs take the inline path.
        assert_eq!(
            super::par_map::<u64, u64, _>(&[], |x| *x),
            Vec::<u64>::new()
        );
        assert_eq!(super::par_map(&[7u64], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_workers_is_order_identical_across_worker_counts() {
        let items: Vec<u64> = (0..97).collect();
        let reference: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for workers in [1, 2, 3, 4, 8, 97, 200] {
            let got = super::par_map_workers(&items, workers, |x| x * x + 1);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_methods_visit_every_element() {
        let mut v = vec![1i32; 8];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v.par_iter().sum::<i32>(), 16);
        let chunks: Vec<usize> = v.par_chunks(3).map(|c| c.len()).collect();
        assert_eq!(chunks, vec![3, 3, 2]);
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            c.iter_mut().for_each(|x| *x = i as i32);
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }
}
