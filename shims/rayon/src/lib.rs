//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The tensor kernels call `par_iter` / `par_iter_mut` / `par_chunks` /
//! `par_chunks_mut` and then plain `Iterator` combinators (`zip`,
//! `enumerate`, `for_each`). Sequential execution is semantically identical
//! for these data-parallel loops (every closure touches a disjoint region),
//! so the shim maps each `par_*` method to its `std` sequential counterpart.
//! Numeric results are bit-identical to the parallel version because the
//! reduction order within one chunk never changes.

pub mod prelude {
    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_methods_visit_every_element() {
        let mut v = vec![1i32; 8];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v.par_iter().sum::<i32>(), 16);
        let chunks: Vec<usize> = v.par_chunks(3).map(|c| c.len()).collect();
        assert_eq!(chunks, vec![3, 3, 2]);
        v.par_chunks_mut(4).enumerate().for_each(|(i, c)| {
            c.iter_mut().for_each(|x| *x = i as i32);
        });
        assert_eq!(v, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }
}
