//! Numeric-mode training: the scheduler drives *real* computation.
//!
//! ```text
//! cargo run --release --example train_numeric
//! ```
//!
//! Trains a LeNet-style network on a synthetic 10-class task twice — once
//! with ample device memory and once inside a deliberately tiny simulated
//! DRAM that forces the LRU Tensor Cache to evict and Cost-Aware
//! Recomputation to replay segments. The two runs must produce *identical*
//! losses: memory scheduling never changes results.

use superneurons::runtime::numeric::NumericBackend;
use superneurons::runtime::Executor;
use superneurons::{DeviceSpec, Policy};

fn backend(net: &superneurons::Net) -> NumericBackend {
    NumericBackend::new(
        net,
        10,
        42,
        superneurons::tensor::sgd::SgdParams {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
    )
}

fn main() {
    let net = superneurons::models::lenet(32, 10);
    let cost = superneurons::graph::NetCost::of(&net);
    println!(
        "LeNet @ batch 32: Σl_f = {:.2} MB, l_peak = {:.2} MB, weights = {:.2} MB",
        cost.sum_l_f() as f64 / 1e6,
        cost.l_peak() as f64 / 1e6,
        cost.total_weight_bytes() as f64 / 1e6
    );

    // Run 1: roomy device.
    let roomy_spec = DeviceSpec::k40c();
    let mut roomy = Executor::new(&net, roomy_spec, Policy::superneurons())
        .expect("roomy executor")
        .with_backend(Box::new(backend(&net)));

    // Run 2: DRAM squeezed to ~1.5x the per-layer floor — eviction and
    // recomputation become mandatory.
    let tight_bytes = cost.total_weight_bytes() + cost.l_peak() + (cost.l_peak() / 4) + (256 << 10);
    let tight_spec = DeviceSpec::k40c().with_dram(tight_bytes);
    println!("tight device: {:.2} MB DRAM\n", tight_bytes as f64 / 1e6);
    let mut tight = Executor::new(&net, tight_spec, Policy::superneurons())
        .expect("tight executor")
        .with_backend(Box::new(backend(&net)));

    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>10}",
        "iter", "loss(roomy)", "loss(tight)", "evictions", "recomputes"
    );
    for it in 1..=40 {
        let r = roomy.run_iteration().expect("roomy iteration");
        let t = tight.run_iteration().expect("tight iteration");
        assert_eq!(
            r.loss, t.loss,
            "scheduling must never change numerics (iteration {it})"
        );
        if it % 5 == 0 || it == 1 {
            println!(
                "{:>5} {:>12.4} {:>12.4} {:>10} {:>10}",
                it,
                r.loss.unwrap(),
                t.loss.unwrap(),
                t.counters.evictions,
                t.counters.recompute_forwards
            );
        }
    }
    println!("\nidentical losses under eviction + recomputation — scheduling is semantics-free");
}
