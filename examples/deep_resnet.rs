//! Going deeper: train a ResNet far beyond what fits residently in GPU DRAM
//! (the paper's Table 4 scenario — their headline is ResNet-2500, ~10⁴
//! layers, on a 12 GB card at batch 1).
//!
//! ```text
//! cargo run --release --example deep_resnet [depth] [batch]
//! ```

use superneurons::frameworks::Framework;
use superneurons::runtime::session::feasible;
use superneurons::runtime::Executor;
use superneurons::DeviceSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1920);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    let spec = DeviceSpec::k40c();
    let net = superneurons::models::resnet_depth(batch, depth);
    let cost = superneurons::graph::NetCost::of(&net);
    println!(
        "ResNet depth≈{depth} @ batch {batch}: {} graph layers, Σ activations = {:.1} GB, weights = {:.1} GB, 12 GB card\n",
        net.len(),
        (cost.sum_l_f() + cost.sum_l_b()) as f64 / 1e9,
        cost.total_weight_bytes() as f64 / 1e9,
    );

    // Who else can train this?
    for fw in Framework::ALL {
        if fw == Framework::SuperNeurons {
            continue;
        }
        let ok = feasible(&net, &spec, fw.policy());
        println!(
            "  {:12} -> {}",
            fw.name(),
            if ok { "trains" } else { "out of memory" }
        );
    }

    // SuperNeurons trains it; measure an iteration.
    let mut ex =
        Executor::new(&net, spec, superneurons::Policy::superneurons()).expect("weights must fit");
    let r = ex
        .run_iteration()
        .expect("SuperNeurons trains this network");
    println!(
        "\n  SuperNeurons -> trains: peak {:.2} GiB of {:.2} GiB, {:.2} s/iteration ({:.1} img/s)",
        r.peak_bytes as f64 / (1u64 << 30) as f64,
        12.0,
        r.iter_time.as_secs_f64(),
        r.imgs_per_sec(batch)
    );
    println!(
        "    offloads {}  prefetches {}  evictions {}  recomputed forwards {}",
        r.counters.offloads,
        r.counters.prefetches,
        r.counters.evictions,
        r.counters.recompute_forwards
    );
    println!(
        "    PCIe traffic: {:.2} GB out, {:.2} GB in",
        r.d2h_bytes as f64 / 1e9,
        r.h2d_bytes as f64 / 1e9
    );
}
