//! Memory timeline inspector: print the Fig. 10-style stepwise resident
//! memory and live-tensor series for any network/policy as CSV.
//!
//! ```text
//! cargo run --release --example memory_timeline [net] [batch] [policy]
//!   net    = alexnet | vgg16 | resnet50 | inception (default alexnet)
//!   batch  = default 64
//!   policy = baseline | liveness | offload | full | superneurons (default)
//! ```

use superneurons::runtime::Executor;
use superneurons::{DeviceSpec, Policy};

fn main() {
    let mut args = std::env::args().skip(1);
    let net_name = args.next().unwrap_or_else(|| "alexnet".into());
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let policy_name = args.next().unwrap_or_else(|| "superneurons".into());

    let net = match net_name.as_str() {
        "alexnet" => superneurons::models::alexnet(batch),
        "vgg16" => superneurons::models::vgg16(batch),
        "resnet50" => superneurons::models::resnet50(batch),
        "inception" => superneurons::models::inception_v4(batch),
        other => {
            eprintln!("unknown net '{other}'");
            std::process::exit(2);
        }
    };
    let policy = match policy_name.as_str() {
        "baseline" => Policy::baseline(),
        "liveness" => Policy::liveness_only(),
        "offload" => Policy::liveness_offload(),
        "full" => Policy::full_memory(),
        "superneurons" => Policy::superneurons(),
        other => {
            eprintln!("unknown policy '{other}'");
            std::process::exit(2);
        }
    };

    let mut ex = Executor::new(&net, DeviceSpec::k40c(), policy).unwrap_or_else(|e| {
        eprintln!("cannot start: {e}");
        std::process::exit(1);
    });
    match ex.run_iteration() {
        Ok(r) => {
            println!("step,phase,layer,resident_mb,live_tensors,free_mb");
            for rec in &ex.trace.records {
                println!(
                    "{},{},{},{:.2},{},{:.2}",
                    rec.step,
                    match rec.phase {
                        superneurons::sim::trace::Phase::Forward => "fwd",
                        superneurons::sim::trace::Phase::Backward => "bwd",
                    },
                    rec.layer,
                    rec.resident_bytes as f64 / 1e6,
                    rec.live_tensors,
                    rec.free_bytes as f64 / 1e6
                );
            }
            eprintln!(
                "# peak {:.2} MB at '{}'; iteration {:.1} ms; traffic {:.1} MB",
                r.peak_bytes as f64 / 1e6,
                ex.trace
                    .peak_step()
                    .map(|p| p.layer.clone())
                    .unwrap_or_default(),
                r.iter_time.as_ms_f64(),
                (r.h2d_bytes + r.d2h_bytes) as f64 / 1e6
            );
        }
        Err(e) => eprintln!("iteration failed: {e}"),
    }
}
