//! Data-parallel scaling on the device-group runtime: the paper targets
//! memory for *data parallelism* (§2.1 — each GPU holds a replica,
//! sub-gradients are aggregated). This example runs a ResNet-50 gang
//! through [`GroupExecutor`]: every replica replays the identical
//! single-device memory plan (byte-identical peaks, asserted below) while
//! bucketed ring all-reduces overlap the remaining backward compute —
//! with the serialized iteration-end exchange shown as the ablation.
//!
//! ```text
//! cargo run --release --example data_parallel [per_gpu_batch]
//! ```

use superneurons::models;
use superneurons::runtime::{
    plan_prediction, ExecError, GroupConfig, GroupExecutor, GroupIterationReport, Interconnect,
};
use superneurons::{DeviceSpec, Policy};

fn main() {
    let per_gpu_batch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    let spec = DeviceSpec::titan_xp();
    let policy = Policy::superneurons();
    let net = models::resnet50(per_gpu_batch);
    let plan_peak = match plan_prediction(&net, &spec, policy) {
        Ok(p) => p.peak_bytes,
        Err(e) => {
            println!("ResNet-50 at batch {per_gpu_batch} does not fit a TITAN Xp: {e}");
            return;
        }
    };

    println!(
        "ResNet-50, {per_gpu_batch} images per GPU, one SuperNeurons plan per replica \
         (single-device plan peak {:.0} MB)\n",
        plan_peak as f64 / 1e6
    );
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>13} {:>12} {:>11}",
        "GPUs", "interconnect", "step (ms)", "serial (ms)", "comm hidden", "img/s", "efficiency"
    );

    let run = |cfg: GroupConfig| -> Result<GroupIterationReport, ExecError> {
        let mut gx = GroupExecutor::new(&net, spec.clone(), policy, cfg)?;
        gx.run_iteration()?; // cold (allocator warm-up)
        gx.run_iteration()
    };
    let solo_rate = match run(GroupConfig::new(1, Interconnect::pcie())) {
        Ok(r) => r.imgs_per_sec(per_gpu_batch),
        Err(e) => {
            println!("single-replica run failed: {e}");
            return;
        }
    };

    for gpus in [1usize, 2, 4, 8, 16] {
        for (name, ic) in [
            ("PCIe", Interconnect::pcie()),
            ("NVLink", Interconnect::nvlink()),
        ] {
            if gpus == 1 && name == "NVLink" {
                continue;
            }
            let cfg = GroupConfig::new(gpus, ic);
            match (run(cfg), run(cfg.serialized())) {
                (Ok(olap), Ok(serial)) => {
                    assert!(olap.peaks_match, "replica peaks must equal the plan peak");
                    println!(
                        "{:>5} {:>12} {:>12.1} {:>14.1} {:>12.1}% {:>12.1} {:>11.2}",
                        gpus,
                        name,
                        olap.step_time.as_ms_f64(),
                        serial.step_time.as_ms_f64(),
                        100.0 * olap.allreduce_overlap_fraction(),
                        olap.imgs_per_sec(per_gpu_batch),
                        olap.imgs_per_sec(per_gpu_batch) / (gpus as f64 * solo_rate),
                    );
                }
                (Err(e), _) | (_, Err(e)) => {
                    println!("{gpus:>5} {name:>12} failed: {e}");
                }
            }
        }
    }
    println!("\nevery replica executed at exactly the single-device plan peak;");
    println!("overlapping the bucketed exchange under backward recovers near-linear scaling,");
    println!("and the gap to the serialized column is the classic no-overlap penalty.");
}
