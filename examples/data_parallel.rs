//! Data-parallel scaling: the paper targets memory for *data parallelism*
//! (§2.1 — each GPU holds a replica, sub-gradients are aggregated). This
//! example scales ResNet-50 across simulated GPUs, each replica running the
//! full SuperNeurons runtime, with ring all-reduce gradient exchange.
//!
//! ```text
//! cargo run --release --example data_parallel [per_gpu_batch]
//! ```

use superneurons::runtime::parallel::{DataParallel, Interconnect};
use superneurons::{DeviceSpec, Policy};

fn main() {
    let per_gpu_batch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    println!("ResNet-50, {per_gpu_batch} images per GPU, SuperNeurons runtime per replica\n");
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>11} {:>14}",
        "GPUs", "interconnect", "overlap", "img/s", "efficiency", "allreduce(ms)"
    );
    for gpus in [1usize, 2, 4, 8, 16] {
        for (name, ic) in [
            ("PCIe", Interconnect::pcie()),
            ("NVLink", Interconnect::nvlink()),
        ] {
            for overlap in [false, true] {
                if gpus == 1 && (name == "NVLink" || overlap) {
                    continue;
                }
                let dp = DataParallel {
                    net_builder: Box::new(superneurons::models::resnet50),
                    per_gpu_batch,
                    gpus,
                    spec: DeviceSpec::titan_xp(),
                    policy: Policy::superneurons(),
                    interconnect: ic,
                    overlap,
                };
                match dp.run() {
                    Ok(r) => println!(
                        "{:>5} {:>12} {:>10} {:>12.1} {:>11.2} {:>14.1}",
                        gpus,
                        name,
                        overlap,
                        r.imgs_per_sec,
                        r.efficiency,
                        r.allreduce_time.as_ms_f64()
                    ),
                    Err(e) => println!("{gpus:>5} {name:>12} {overlap:>10} failed: {e}"),
                }
            }
        }
    }
    println!("\ngradient exchange shrinks relative to compute as the interconnect speeds up,");
    println!("and overlapping it under the backward pass recovers near-linear scaling.");
}
