//! Serve a multi-tenant job stream on a simulated GPU fleet.
//!
//! Demonstrates the `sn-cluster` subsystem end to end: a burst of training
//! jobs arrives, memory-aware admission predicts each job's peak bytes per
//! policy preset (falling back along the preset ladder when the requested
//! one does not fit), placement packs replicas onto devices, gangs run in
//! lockstep, and the report summarizes latency, throughput, and utilization.
//!
//! ```text
//! cargo run --release --example cluster_serve
//! ```

use superneurons::cluster::synthetic_stream;
use superneurons::runtime::Interconnect;
use superneurons::{
    ClusterSim, DeviceSpec, Fleet, JobSpec, PlacementPolicy, PolicyPreset, Workload,
};

const MB: u64 = 1 << 20;

fn main() {
    // Eight 96 MB devices: small enough that memory, not compute, limits
    // tenancy — the regime the SuperNeurons policies were built for.
    let fleet = Fleet::homogeneous(
        8,
        DeviceSpec::k40c().with_dram(96 * MB),
        Interconnect::pcie(),
    );

    // A reproducible burst of 100 mixed jobs, plus three hand-written
    // tenants: a 4-replica gang, a memory-hog that only fits after
    // downgrading, and a forward-only inference service co-located against
    // the training tenants using its (much smaller) exact plan peak.
    let mut jobs = synthetic_stream(100, 42, PolicyPreset::Superneurons, true);
    jobs.push((
        superneurons::sim::SimTime::from_us(50),
        JobSpec::new(
            "serve-resnet",
            Workload::Synthetic {
                width: 32,
                depth: 6,
            },
            16,
        )
        .inference()
        .with_iterations(64),
    ));
    jobs.push((
        superneurons::sim::SimTime::from_us(100),
        JobSpec::new(
            "gang4",
            Workload::Synthetic {
                width: 16,
                depth: 4,
            },
            16,
        )
        .with_replicas(4)
        .with_iterations(8),
    ));
    jobs.push((
        superneurons::sim::SimTime::from_us(200),
        JobSpec::new(
            "hog",
            Workload::Synthetic {
                width: 64,
                depth: 8,
            },
            32,
        )
        .with_preset(PolicyPreset::Baseline)
        .with_downgrade(true)
        .with_iterations(4),
    ));

    for placement in PlacementPolicy::ALL {
        let mut sim = ClusterSim::new(fleet.clone(), placement);
        let report = sim.run(jobs.clone());
        println!("{}", report.render_text());
    }

    // Show the schedule around the hand-written tenants.
    let mut sim = ClusterSim::new(fleet.clone(), PlacementPolicy::BestFit);
    let report = sim.run(jobs);
    println!("schedule excerpts:");
    for event in report
        .trace
        .iter()
        .filter(|e| e.job == "gang4" || e.job == "hog" || e.job == "serve-resnet")
    {
        println!("  {}", event.render());
    }
    if let Some(hog) = report.jobs.iter().find(|j| j.name == "hog") {
        println!(
            "  hog requested {:?}, granted {:?} (admission walked the preset ladder)",
            hog.requested, hog.granted
        );
    }
    if let Some(srv) = report.jobs.iter().find(|j| j.name == "serve-resnet") {
        println!(
            "  serve-resnet ({}): reserved {:?} bytes per replica — a forward-only \
             plan peak, co-located against training tenants",
            srv.kind.name(),
            srv.reservations
        );
    }

    // Open-loop serving: arrivals are *pulled* from a generator, never
    // materialized, so memory tracks peak concurrency — not stream length.
    // Any `ArrivalStream` works here; `PoissonStream` is the built-in
    // seeded open-loop source, `ReplayStream` adapts a recorded trace.
    let mut stream = superneurons::cluster::PoissonStream::new(
        50_000,
        7,
        superneurons::sim::SimTime::from_us(500),
        PolicyPreset::Superneurons,
    );
    let svc = ClusterSim::new(fleet, PlacementPolicy::BestFit).run_stream(&mut stream);
    println!("\nopen-loop Poisson serving (50k jobs, pulled not materialized):");
    println!("{}", svc.render_text());
}
