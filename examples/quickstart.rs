//! Quickstart: build a network, pick a device and a policy, train.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the headline effect of the paper: the same AlexNet iteration under
//! the naive allocator, under each memory technique, and under the full
//! SuperNeurons runtime — peak memory falling from `Σ l_f + Σ l_b` towards
//! `max_i(l_i)` while throughput stays competitive.

use superneurons::runtime::session::Session;
use superneurons::{DeviceSpec, Policy};

fn main() {
    let spec = DeviceSpec::titan_xp();
    println!(
        "device: {} ({} GB DRAM)\n",
        spec.name,
        spec.dram_bytes >> 30
    );

    let configs = [
        ("baseline (naive allocator)", Policy::baseline()),
        ("+ liveness analysis", Policy::liveness_only()),
        ("+ prefetch/offload (UTP)", Policy::liveness_offload()),
        ("+ cost-aware recomputation", Policy::full_memory()),
        ("SuperNeurons (all techniques)", Policy::superneurons()),
    ];

    println!(
        "{:32} {:>12} {:>12} {:>12}",
        "configuration", "peak (MB)", "img/s", "PCIe (MB/it)"
    );
    for (name, policy) in configs {
        let net = superneurons::models::alexnet(256);
        let session = Session::new(net, spec.clone(), policy);
        match session.run() {
            Ok(r) => println!(
                "{:32} {:>12.1} {:>12.1} {:>12.1}",
                name,
                r.peak_bytes as f64 / 1e6,
                r.imgs_per_sec,
                r.traffic_per_iter() as f64 / 1e6,
            ),
            Err(e) => println!("{name:32} failed: {e}"),
        }
    }

    // The floor the paper proves: peak_m is bounded below by the largest
    // single layer.
    let net = superneurons::models::alexnet(256);
    let cost = superneurons::graph::NetCost::of(&net);
    println!(
        "\nl_peak = max_i(l_i) = {:.1} MB (+ {:.1} MB weights)",
        cost.l_peak() as f64 / 1e6,
        cost.total_weight_bytes() as f64 / 1e6
    );
}
