//! Integration tests for the extension subsystems: the Fig.-7 UTP tiers,
//! alternative cache replacement policies, and data-parallel sessions —
//! each composed with the full runtime stack.

use superneurons::runtime::parallel::{DataParallel, Interconnect};
use superneurons::runtime::{CachePolicy, Executor, Policy, TierConfig};
use superneurons::DeviceSpec;

/// Constraining the local host tier makes offload spill to the other Fig.-7
/// pools; every tier configuration trains and the spill ordering follows
/// placement priority (peer first, then remote).
#[test]
fn utp_tiers_absorb_offload_spill() {
    let spec = DeviceSpec::k40c().with_dram(4 << 30);
    let run = |tiers: TierConfig| {
        let net = superneurons::models::vgg16(48);
        let pol = Policy {
            tiers,
            ..Policy::superneurons_no_cache()
        };
        let mut ex = Executor::new(&net, spec.clone(), pol).unwrap();
        ex.run_iteration().unwrap();
        let r = ex.run_iteration().unwrap();
        let hw = ex.dev.host.high_water();
        (r, hw)
    };

    // Single local tier (the paper's configuration): everything lands there.
    let (_, (p, l, rm)) = run(TierConfig::local_only(256 << 30));
    assert_eq!(p, 0);
    assert!(l > 1 << 30, "VGG16@48 offloads > 1 GiB: {l}");
    assert_eq!(rm, 0);

    // 1 GiB local + peer: peer (fastest) absorbs everything first.
    let (_, (p, l, rm)) = run(TierConfig::full(8 << 30, 1 << 30, 0));
    assert!(p > 0, "peer tier must be used");
    assert!(l <= 1 << 30);
    assert_eq!(rm, 0);

    // 1 GiB local + remote: local fills, remote takes the spill.
    let (r_remote, (p, l, rm)) = run(TierConfig::full(0, 1 << 30, 64 << 30));
    assert_eq!(p, 0);
    assert!(l <= 1 << 30);
    assert!(rm > 0, "remote tier must take the spill");

    // The remote-heavy configuration is the slowest (6 GB/s links).
    let (r_peer, _) = run(TierConfig::full(8 << 30, 1 << 30, 0));
    assert!(
        r_peer.iter_time <= r_remote.iter_time,
        "peer tier (10 GB/s) must not be slower than remote (6 GB/s)"
    );
}

/// All three replacement policies complete under pressure, move comparable
/// data, and never break capacity; MRU (adversarial for this access
/// pattern) must not beat LRU.
#[test]
fn cache_policies_complete_under_pressure() {
    let spec = DeviceSpec::k40c().with_dram(2 << 30);
    let mut times = Vec::new();
    for cp in [CachePolicy::Lru, CachePolicy::Fifo, CachePolicy::Mru] {
        let net = superneurons::models::alexnet(448);
        let pol = Policy {
            cache_policy: cp,
            ..Policy::superneurons()
        };
        let mut ex = Executor::new(&net, spec.clone(), pol).unwrap();
        ex.run_iteration().unwrap();
        let r = ex.run_iteration().unwrap();
        assert!(r.peak_bytes <= spec.dram_bytes);
        assert!(r.counters.evictions > 0, "{cp:?} must face pressure");
        times.push((cp, r.iter_time));
    }
    let t = |want: CachePolicy| times.iter().find(|(c, _)| *c == want).unwrap().1;
    assert!(
        t(CachePolicy::Lru) <= t(CachePolicy::Mru),
        "LRU must not lose to the adversarial MRU ordering"
    );
}

/// Data-parallel composition: throughput grows with GPUs, efficiency decays
/// without overlap and recovers with it, and per-replica memory behaviour
/// is unchanged.
#[test]
fn data_parallel_scales_and_preserves_replica_memory() {
    let mk = |gpus, overlap| DataParallel {
        net_builder: Box::new(superneurons::models::resnet50),
        per_gpu_batch: 16,
        gpus,
        spec: DeviceSpec::titan_xp(),
        policy: Policy::superneurons(),
        interconnect: Interconnect::pcie(),
        overlap,
    };
    let r1 = mk(1, false).run().unwrap();
    let r8 = mk(8, false).run().unwrap();
    let r8o = mk(8, true).run().unwrap();
    assert!(
        r8.imgs_per_sec > 4.0 * r1.imgs_per_sec,
        "8 GPUs must beat 4x one GPU"
    );
    assert!(r8.efficiency < 1.0);
    assert!(r8o.efficiency >= r8.efficiency);
    assert_eq!(
        r1.peak_bytes, r8.peak_bytes,
        "replica memory is independent of scale"
    );
    assert_eq!(r8.global_batch, 128);
}
