//! Cross-crate integration tests: the paper's §3 peak-memory progression,
//! verified end-to-end on the real AlexNet through the full runtime stack
//! (models → graph → runtime → simulated device).

use superneurons::graph::NetCost;
use superneurons::runtime::{Executor, Policy, RecomputeMode};
use superneurons::{DeviceSpec, Framework};

fn spec() -> DeviceSpec {
    DeviceSpec::k40c()
}

/// Baseline peak equals the sum of every tensor the iteration materializes
/// (`Σ l_f + Σ l_b` in the paper's notation) plus the resident weights,
/// up to block-rounding.
#[test]
fn baseline_peak_matches_sum_formula() {
    let net = superneurons::models::alexnet(64);
    let mut ex = Executor::new(&net, spec(), Policy::baseline()).unwrap();
    let r = ex.run_iteration().unwrap();
    let tensor_sum: u64 = ex.plan.tensors.iter().map(|t| t.bytes).sum();
    let weights = ex.cost.total_weight_bytes();
    let expect = tensor_sum + weights;
    // Block-rounding and transient workspaces put the measured peak at or
    // slightly above the analytic sum, never more than a few % off.
    assert!(r.peak_bytes >= expect, "{} < {}", r.peak_bytes, expect);
    assert!(
        r.peak_bytes < expect + expect / 10,
        "measured {} vs analytic {}",
        r.peak_bytes,
        expect
    );
}

/// The §3 progression: each added technique strictly reduces peak memory,
/// and liveness alone saves 30–50% of the baseline's tensor memory on
/// AlexNet (the paper measured 31.9% at batch 200).
#[test]
fn each_technique_strictly_reduces_alexnet_peak() {
    let net = superneurons::models::alexnet(200);
    let w = NetCost::of(&net).total_weight_bytes();
    let peak = |p: Policy| {
        Executor::new(&net, spec(), p)
            .unwrap()
            .run_iteration()
            .unwrap()
            .peak_bytes
            - w
    };
    let base = peak(Policy::baseline());
    let live = peak(Policy::liveness_only());
    let off = peak(Policy::liveness_offload());
    let full = peak(Policy::full_memory());
    assert!(
        live < base && off < live && full < off,
        "{base} {live} {off} {full}"
    );
    let saving = 1.0 - live as f64 / base as f64;
    assert!(
        (0.30..=0.55).contains(&saving),
        "liveness saving {saving:.3} outside the paper's band"
    );
    // Offload ≥ 45% total saving (the paper: 48.29% at this batch size).
    let saving_off = 1.0 - off as f64 / base as f64;
    assert!(saving_off >= 0.45, "offload saving {saving_off:.3}");
}

/// Table 1's count structure on the real AlexNet: speed-centric replays
/// every non-checkpoint exactly once (14), memory-centric pays the
/// triangular cost (23), cost-aware sits between and never exceeds the
/// memory-centric peak.
#[test]
fn alexnet_recompute_counts_match_the_paper() {
    let net = superneurons::models::alexnet(128);
    let run = |mode| {
        let p = Policy {
            recompute: mode,
            ..Policy::full_memory()
        };
        let mut ex = Executor::new(&net, spec(), p).unwrap();
        ex.run_iteration().unwrap()
    };
    let s = run(RecomputeMode::SpeedCentric);
    let m = run(RecomputeMode::MemoryCentric);
    let c = run(RecomputeMode::CostAware);
    assert_eq!(
        s.counters.recompute_forwards, 14,
        "paper Table 1: AlexNet speed-centric"
    );
    assert_eq!(
        m.counters.recompute_forwards, 23,
        "paper Table 1: AlexNet memory-centric"
    );
    assert_eq!(
        c.counters.recompute_forwards, 17,
        "paper Table 1: AlexNet cost-aware"
    );
    assert!(m.peak_bytes <= s.peak_bytes);
    assert!(c.peak_bytes <= s.peak_bytes);
    assert_eq!(
        c.peak_bytes, m.peak_bytes,
        "cost-aware peak == memory-centric peak"
    );
}

/// The Tensor Cache eliminates PCIe traffic whenever DRAM suffices
/// (Table 3's zero column) and the non-cached runtime's traffic grows
/// linearly with the batch size.
#[test]
fn tensor_cache_traffic_shape() {
    let traffic = |batch: usize, cache: bool| {
        let net = superneurons::models::alexnet(batch);
        let p = if cache {
            Policy::superneurons()
        } else {
            Policy::superneurons_no_cache()
        };
        let mut ex = Executor::new(&net, spec(), p).unwrap();
        let r = ex.run_iteration().unwrap();
        r.h2d_bytes + r.d2h_bytes
    };
    assert_eq!(traffic(256, true), 0);
    assert_eq!(traffic(512, true), 0);
    let t256 = traffic(256, false);
    let t512 = traffic(512, false);
    assert!(t256 > 0);
    let ratio = t512 as f64 / t256 as f64;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "uncached traffic should scale linearly: {t256} -> {t512}"
    );
}

/// End-to-end framework comparison on a real network: SuperNeurons trains
/// the largest batch, and its advantage over the best baseline is at least
/// the paper's average factor (1.89x).
#[test]
fn superneurons_widest_batch_on_resnet50() {
    let spec = spec();
    let mut best_other = 0usize;
    let mut sn = 0usize;
    for fw in Framework::ALL {
        let b =
            superneurons::frameworks::max_batch(fw, &superneurons::models::resnet50, &spec, 2048);
        if fw == Framework::SuperNeurons {
            sn = b;
        } else {
            best_other = best_other.max(b);
        }
    }
    assert!(
        sn as f64 >= 1.89 * best_other as f64,
        "sn {sn} vs best {best_other}"
    );
}

/// Going deeper: SuperNeurons trains a ResNet at least 3.24x deeper than
/// every emulated baseline (the paper's weakest ratio, vs TensorFlow).
#[test]
fn superneurons_deepest_resnet() {
    // A shrunken device keeps the depth search fast while preserving the
    // ratios; the full 12 GB Table 4 run lives in the experiment harness
    // (where SuperNeurons exceeds the 8000-depth search cap).
    let spec = DeviceSpec::k40c().with_dram(1 << 30);
    let batch = 8;
    let sn =
        superneurons::frameworks::max_resnet_depth(Framework::SuperNeurons, batch, &spec, 2000);
    for fw in [
        Framework::Caffe,
        Framework::Torch,
        Framework::MXNet,
        Framework::TensorFlow,
    ] {
        let d = superneurons::frameworks::max_resnet_depth(fw, batch, &spec, 2000);
        assert!(
            sn as f64 >= 3.24 * d as f64,
            "{} reached {d}, SuperNeurons {sn}",
            fw.name()
        );
    }
}

/// The dynamic workspace selector makes SuperNeurons the fastest framework
/// on every evaluation network (Fig. 14's headline).
#[test]
fn superneurons_leads_fig14_speed() {
    let spec = DeviceSpec::titan_xp();
    for (name, build) in [
        (
            "AlexNet",
            superneurons::models::alexnet as fn(usize) -> superneurons::Net,
        ),
        ("ResNet50", superneurons::models::resnet50),
    ] {
        let batch = if name == "AlexNet" { 128 } else { 16 };
        let mut speeds = Vec::new();
        for fw in Framework::ALL {
            let net = build(batch);
            let mut ex = Executor::new(&net, spec.clone(), fw.policy()).unwrap();
            ex.run_iteration().unwrap();
            let r = ex.run_iteration().unwrap();
            speeds.push((fw.name(), r.imgs_per_sec(batch)));
        }
        let sn = speeds.iter().find(|(n, _)| *n == "SuperNeurons").unwrap().1;
        for (n, v) in &speeds {
            assert!(
                sn >= *v,
                "{name}: SuperNeurons {sn:.0} must lead {n} {v:.0}"
            );
        }
    }
}

/// Peak memory never exceeds device capacity, whatever the policy — the
/// allocator is the enforcement point.
#[test]
fn capacity_is_inviolable() {
    let tight = DeviceSpec::k40c().with_dram(900 << 20);
    let net = superneurons::models::alexnet(96);
    for p in [
        Policy::baseline(),
        Policy::liveness_only(),
        Policy::superneurons(),
    ] {
        if let Ok(mut ex) = Executor::new(&net, tight.clone(), p) {
            if let Ok(r) = ex.run_iteration() {
                assert!(r.peak_bytes <= tight.dram_bytes);
            }
        }
    }
}
