//! Cross-crate numeric integration: the scheduler drives real computation,
//! and no memory policy — recomputation, offloading, eviction — may change
//! a single bit of the training trajectory.

use superneurons::runtime::numeric::NumericBackend;
use superneurons::runtime::{Executor, Policy, RecomputeMode};
use superneurons::tensor::sgd::SgdParams;
use superneurons::{DeviceSpec, Net};

fn backend(net: &Net, seed: u64) -> Box<NumericBackend> {
    Box::new(NumericBackend::new(
        net,
        10,
        seed,
        SgdParams {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        },
    ))
}

fn losses(net: &Net, spec: DeviceSpec, policy: Policy, iters: usize) -> Vec<f32> {
    let mut ex = Executor::new(net, spec, policy)
        .unwrap()
        .with_backend(backend(net, 99));
    (0..iters)
        .map(|_| ex.run_iteration().unwrap().loss.unwrap())
        .collect()
}

/// Every policy bundle produces the identical loss trajectory.
#[test]
fn all_policies_agree_bit_for_bit() {
    let net = superneurons::models::lenet(16, 10);
    let reference = losses(&net, DeviceSpec::k40c(), Policy::liveness_only(), 6);
    for policy in [
        Policy::baseline(),
        Policy::liveness_offload(),
        Policy::full_memory(),
        Policy::superneurons(),
        Policy {
            recompute: RecomputeMode::MemoryCentric,
            ..Policy::full_memory()
        },
        Policy {
            recompute: RecomputeMode::SpeedCentric,
            ..Policy::full_memory()
        },
    ] {
        let l = losses(&net, DeviceSpec::k40c(), policy, 6);
        assert_eq!(l, reference, "policy {policy:?} diverged");
    }
}

/// Shrinking the device until eviction and recomputation are mandatory
/// still reproduces the exact trajectory.
#[test]
fn tight_memory_preserves_trajectory() {
    let net = superneurons::models::lenet(16, 10);
    let cost = superneurons::graph::NetCost::of(&net);
    let reference = losses(&net, DeviceSpec::k40c(), Policy::superneurons(), 8);
    let tight = DeviceSpec::k40c()
        .with_dram(cost.total_weight_bytes() + cost.l_peak() + cost.l_peak() / 2 + (512 << 10));
    let l = losses(&net, tight, Policy::superneurons(), 8);
    assert_eq!(l, reference);
}

/// Training actually learns: loss falls substantially on the separable
/// synthetic task through the full SuperNeurons stack.
#[test]
fn full_stack_training_converges() {
    let net = superneurons::models::lenet(32, 10);
    let l = losses(&net, DeviceSpec::k40c(), Policy::superneurons(), 40);
    let first = l[..5].iter().sum::<f32>() / 5.0;
    let last = l[l.len() - 5..].iter().sum::<f32>() / 5.0;
    assert!(
        last < first * 0.5,
        "loss should halve: first≈{first:.3}, last≈{last:.3}"
    );
}

/// A nonlinear (residual, fan/join) network trains through the full stack,
/// with recomputation segments anchored at the joins.
#[test]
fn residual_network_trains_with_recompute() {
    let mut net = Net::new("resmini", superneurons::Shape4::new(16, 4, 12, 12));
    let d = net.data();
    let c1 = net.conv(d, 8, 3, 1, 1);
    let b1 = net.bn(c1);
    let r1 = net.relu(b1);
    let c2 = net.conv(r1, 8, 3, 1, 1);
    let b2 = net.bn(c2);
    let e = net.eltwise(&[b2, c1]);
    let r2 = net.relu(e);
    let p = net.max_pool(r2, 2, 2, 0);
    let f = net.fc(p, 10);
    net.softmax(f);

    let l_full = losses(&net, DeviceSpec::k40c(), Policy::full_memory(), 10);
    let l_plain = losses(&net, DeviceSpec::k40c(), Policy::liveness_only(), 10);
    assert_eq!(l_full, l_plain, "recompute through joins must be exact");
    assert!(l_full.last().unwrap() < l_full.first().unwrap());
}

/// Recomputation truly re-executes forwards: the backend's per-layer
/// forward counters exceed one for non-checkpoint layers.
#[test]
fn recompute_reexecutes_layers() {
    let net = superneurons::models::lenet(8, 10);
    let mut ex = Executor::new(&net, DeviceSpec::k40c(), Policy::full_memory())
        .unwrap()
        .with_backend(backend(&net, 7));
    let r = ex.run_iteration().unwrap();
    assert!(ex.backend().is_some());
    assert!(
        r.counters.recompute_forwards >= 4,
        "LeNet has >=4 recomputable layers"
    );
}
